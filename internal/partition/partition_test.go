package partition

import (
	"math/rand"
	"testing"
	"testing/quick"

	"featgraph/internal/sparse"
)

func randGraph(t *testing.T, seed int64, n, deg int) *sparse.CSR {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	return sparse.Random(rng, n, n, deg)
}

func TestOneDConservesEdges(t *testing.T) {
	a := randGraph(t, 1, 64, 9)
	for _, parts := range []int{1, 2, 3, 4, 7, 64} {
		p := OneD(a, parts)
		if p.NumParts() != parts {
			t.Fatalf("NumParts = %d, want %d", p.NumParts(), parts)
		}
		total := 0
		for i, part := range p.Parts {
			if err := part.Validate(); err != nil {
				t.Fatalf("parts=%d part %d invalid: %v", parts, i, err)
			}
			total += part.NNZ()
			rg := p.ColRanges[i]
			for _, c := range part.ColIdx {
				if int(c) < rg.Lo || int(c) >= rg.Hi {
					t.Fatalf("parts=%d part %d has col %d outside [%d,%d)", parts, i, c, rg.Lo, rg.Hi)
				}
			}
		}
		if total != a.NNZ() {
			t.Fatalf("parts=%d edges not conserved: %d vs %d", parts, total, a.NNZ())
		}
	}
}

func TestOneDRangesCoverColumns(t *testing.T) {
	a := randGraph(t, 2, 50, 5)
	p := OneD(a, 7)
	if p.ColRanges[0].Lo != 0 || p.ColRanges[len(p.ColRanges)-1].Hi != a.NumCols {
		t.Fatalf("ranges do not span columns: %v", p.ColRanges)
	}
	for i := 1; i < len(p.ColRanges); i++ {
		if p.ColRanges[i].Lo != p.ColRanges[i-1].Hi {
			t.Fatalf("ranges not contiguous: %v", p.ColRanges)
		}
	}
}

func TestOneDClamps(t *testing.T) {
	a := randGraph(t, 3, 8, 2)
	if got := OneD(a, 0).NumParts(); got != 1 {
		t.Fatalf("parts=0 should clamp to 1, got %d", got)
	}
	if got := OneD(a, 100).NumParts(); got != 8 {
		t.Fatalf("parts=100 should clamp to NumCols, got %d", got)
	}
}

func TestOneDPreservesEIDs(t *testing.T) {
	a := randGraph(t, 4, 32, 6)
	p := OneD(a, 4)
	seen := make(map[int32]bool, a.NNZ())
	for _, part := range p.Parts {
		for _, e := range part.EID {
			if seen[e] {
				t.Fatalf("eid %d appears in two parts", e)
			}
			seen[e] = true
		}
	}
	if len(seen) != a.NNZ() {
		t.Fatalf("eids lost: %d of %d", len(seen), a.NNZ())
	}
}

func TestOneDPartitionProperty(t *testing.T) {
	f := func(seed int64, partsRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(40)
		a := sparse.Random(rng, n, n, 1+rng.Intn(5))
		parts := 1 + int(partsRaw)%8
		p := OneD(a, parts)
		total := 0
		for _, part := range p.Parts {
			total += part.NNZ()
		}
		return total == a.NNZ()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestFeatureTiles(t *testing.T) {
	tiles := FeatureTiles(10, 4)
	want := []Range{{0, 4}, {4, 8}, {8, 10}}
	if len(tiles) != len(want) {
		t.Fatalf("FeatureTiles(10,4) = %v", tiles)
	}
	for i := range want {
		if tiles[i] != want[i] {
			t.Fatalf("FeatureTiles(10,4) = %v", tiles)
		}
	}
	if got := FeatureTiles(10, 0); len(got) != 1 || got[0] != (Range{0, 10}) {
		t.Fatalf("factor 0 should mean no tiling: %v", got)
	}
	if got := FeatureTiles(10, 100); len(got) != 1 {
		t.Fatalf("factor > d should mean no tiling: %v", got)
	}
	if (Range{3, 7}).Len() != 4 {
		t.Fatal("Range.Len wrong")
	}
}

func TestColumnDegrees(t *testing.T) {
	coo := &sparse.COO{
		NumRows: 3, NumCols: 3,
		Row: []int32{0, 1, 2, 2},
		Col: []int32{1, 1, 1, 0},
	}
	a, err := sparse.FromCOO(coo)
	if err != nil {
		t.Fatal(err)
	}
	deg := ColumnDegrees(a)
	if deg[0] != 1 || deg[1] != 3 || deg[2] != 0 {
		t.Fatalf("ColumnDegrees = %v", deg)
	}
}

func TestHybridSeparatesByDegree(t *testing.T) {
	// Columns 0..3 low degree (1), columns 4..5 high degree (many rows).
	coo := &sparse.COO{NumRows: 10, NumCols: 6}
	for c := int32(0); c < 4; c++ {
		coo.Row = append(coo.Row, c)
		coo.Col = append(coo.Col, c)
	}
	for r := int32(0); r < 10; r++ {
		for c := int32(4); c < 6; c++ {
			coo.Row = append(coo.Row, r)
			coo.Col = append(coo.Col, c)
		}
	}
	a, err := sparse.FromCOO(coo)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Hybrid(a, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if plan.LowCols != 4 {
		t.Fatalf("LowCols = %d, want 4", plan.LowCols)
	}
	if len(plan.ChunkCols) != 2 {
		t.Fatalf("ChunkCols = %v, want 2 chunks of 1", plan.ChunkCols)
	}
	total := 0
	for i, part := range plan.Parts {
		if err := part.Validate(); err != nil {
			t.Fatalf("part %d invalid: %v", i, err)
		}
		total += part.NNZ()
	}
	if total != a.NNZ() {
		t.Fatalf("hybrid parts lose edges: %d vs %d", total, a.NNZ())
	}
	// Low part must only contain low-degree columns.
	for _, c := range plan.Parts[0].ColIdx {
		if c >= 4 {
			t.Fatalf("low part contains high-degree col %d", c)
		}
	}
}

func TestHybridChunkSizing(t *testing.T) {
	a := randGraph(t, 5, 30, 10)
	plan, err := Hybrid(a, 1, 7) // all columns high-degree
	if err != nil {
		t.Fatal(err)
	}
	if plan.LowCols != 0 {
		t.Fatalf("LowCols = %d, want 0", plan.LowCols)
	}
	for i, chunk := range plan.ChunkCols {
		if len(chunk) > 7 {
			t.Fatalf("chunk %d has %d cols, max 7", i, len(chunk))
		}
	}
	if _, err := Hybrid(a, 1, 0); err == nil {
		t.Fatal("chunkCols=0 should error")
	}
}

func TestHilbertRoundTrip(t *testing.T) {
	f := func(xRaw, yRaw uint16) bool {
		const k = 16
		x, y := uint32(xRaw), uint32(yRaw)
		d := HilbertXY2D(k, x, y)
		x2, y2 := HilbertD2XY(k, d)
		return x2 == x && y2 == y
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestHilbertBijectiveSmallGrid(t *testing.T) {
	const k = 3 // 8x8 grid
	seen := make(map[uint64]bool)
	for x := uint32(0); x < 8; x++ {
		for y := uint32(0); y < 8; y++ {
			d := HilbertXY2D(k, x, y)
			if d >= 64 {
				t.Fatalf("d=%d out of range for 8x8", d)
			}
			if seen[d] {
				t.Fatalf("duplicate d=%d", d)
			}
			seen[d] = true
		}
	}
	if len(seen) != 64 {
		t.Fatalf("not bijective: %d cells", len(seen))
	}
}

func TestHilbertCurveUnitSteps(t *testing.T) {
	// Consecutive curve positions must be grid neighbours (distance 1).
	const k = 4
	px, py := HilbertD2XY(k, 0)
	for d := uint64(1); d < 256; d++ {
		x, y := HilbertD2XY(k, d)
		step := absDiff(int32(x), int32(px)) + absDiff(int32(y), int32(py))
		if step != 1 {
			t.Fatalf("step from d=%d is %d, want 1", d-1, step)
		}
		px, py = x, y
	}
}

func TestHilbertEdgesPreserveEdgeSet(t *testing.T) {
	a := randGraph(t, 6, 40, 6)
	h := Hilbert(a)
	if len(h.Row) != a.NNZ() {
		t.Fatalf("Hilbert lost edges: %d vs %d", len(h.Row), a.NNZ())
	}
	type edge struct{ r, c, e int32 }
	set := make(map[edge]bool)
	rm := RowMajorEdges(a)
	for i := range rm.Row {
		set[edge{rm.Row[i], rm.Col[i], rm.EID[i]}] = true
	}
	for i := range h.Row {
		if !set[edge{h.Row[i], h.Col[i], h.EID[i]}] {
			t.Fatalf("hilbert edge %d not in original set", i)
		}
	}
}

func TestHilbertImprovesLocality(t *testing.T) {
	// On a random graph, Hilbert order should have substantially lower
	// combined (row, col) jump distance than row-major order, which is
	// the mechanism behind the paper's locality claim.
	a := randGraph(t, 7, 256, 8)
	hil := Hilbert(a).Locality()
	rm := RowMajorEdges(a).Locality()
	if hil >= rm {
		t.Fatalf("Hilbert locality %d not better than row-major %d", hil, rm)
	}
}

func TestHilbertOrderFor(t *testing.T) {
	cases := map[int]uint{1: 1, 2: 1, 3: 2, 4: 2, 5: 3, 1024: 10, 1025: 11}
	for n, want := range cases {
		if got := hilbertOrderFor(n, 1); got != want {
			t.Errorf("hilbertOrderFor(%d) = %d, want %d", n, got, want)
		}
	}
}
