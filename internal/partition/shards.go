package partition

import "featgraph/internal/sparse"

// EdgeShard is one contiguous shard of a CSR for out-of-core execution:
// edges [EdgeLo, EdgeHi) spanning destination rows [RowLo, RowHi). Shards
// are cut at exact edge multiples so every shard carries nearly the same
// number of edges regardless of degree skew; a row heavier than the target
// is therefore split across shards, and adjacent shards then share the
// boundary row (shard i's RowHi-1 == shard i+1's RowLo). Splitting is safe
// because the shard executor merges partial aggregations: sum/max/min fold
// associatively into an identity-prefilled output, and mean accumulates as
// sum and divides by the global degree at the end.
type EdgeShard struct {
	RowLo, RowHi   int // destination-row span (half-open); RowHi-1 may continue in the next shard
	EdgeLo, EdgeHi int // edge span (half-open) in CSR storage order
}

// NNZ returns the shard's edge count.
func (s EdgeShard) NNZ() int { return s.EdgeHi - s.EdgeLo }

// Rows returns the shard's destination-row count.
func (s EdgeShard) Rows() int { return s.RowHi - s.RowLo }

// EdgeShards cuts a into contiguous edge-range shards of at most
// targetEdges edges each. The empty graph yields a single empty shard
// covering every row, so executors need no zero-edge special case. Shard
// edge ranges partition [0, nnz) exactly; row ranges cover every non-empty
// row, with boundary rows repeated where a row splits.
func EdgeShards(a *sparse.CSR, targetEdges int) []EdgeShard {
	nnz := a.NNZ()
	if targetEdges < 1 {
		targetEdges = 1
	}
	if nnz == 0 {
		return []EdgeShard{{RowLo: 0, RowHi: a.NumRows}}
	}
	nshards := (nnz + targetEdges - 1) / targetEdges
	shards := make([]EdgeShard, 0, nshards)
	for s := 0; s < nshards; s++ {
		// Boundaries in int64 so shard math survives graphs near the int32
		// edge limit on 32-bit platforms.
		elo := int(int64(nnz) * int64(s) / int64(nshards))
		ehi := int(int64(nnz) * int64(s+1) / int64(nshards))
		shards = append(shards, EdgeShard{
			RowLo:  rowContaining(a.RowPtr, elo),
			RowHi:  rowAfter(a.RowPtr, ehi),
			EdgeLo: elo,
			EdgeHi: ehi,
		})
	}
	return shards
}

// rowContaining returns the first row whose edge range intersects
// [e, nnz): the smallest r with RowPtr[r+1] > e.
func rowContaining(rowPtr []int32, e int) int {
	lo, hi := 0, len(rowPtr)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if int(rowPtr[mid+1]) > e {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// rowAfter returns one past the last row with an edge before e: the
// smallest r with RowPtr[r] >= e.
func rowAfter(rowPtr []int32, e int) int {
	lo, hi := 0, len(rowPtr)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if int(rowPtr[mid]) >= e {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// ExtractShard materializes shard s of a as a local-row CSR: row r of the
// result is global destination row s.RowLo + r. Column indices and edge
// ids stay global, so kernels index the original feature and edge tensors
// directly; a split boundary row's pointer range is clamped to the shard's
// edge span.
func ExtractShard(a *sparse.CSR, s EdgeShard) *sparse.CSR {
	rows := s.RowHi - s.RowLo
	nnz := s.EdgeHi - s.EdgeLo
	part := &sparse.CSR{
		NumRows: rows,
		NumCols: a.NumCols,
		RowPtr:  make([]int32, rows+1),
		ColIdx:  append([]int32(nil), a.ColIdx[s.EdgeLo:s.EdgeHi]...),
		EID:     append([]int32(nil), a.EID[s.EdgeLo:s.EdgeHi]...),
		Val:     append([]float32(nil), a.Val[s.EdgeLo:s.EdgeHi]...),
	}
	for r := 0; r <= rows; r++ {
		p := int(a.RowPtr[s.RowLo+r]) - s.EdgeLo
		part.RowPtr[r] = int32(min(max(p, 0), nnz))
	}
	return part
}
