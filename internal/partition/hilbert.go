package partition

import (
	"math/bits"
	"sort"

	"featgraph/internal/sparse"
)

// This file implements Hilbert-curve edge ordering (§III-C1). Edge-wise
// computations read both source and destination vertex features; visiting
// edges in Hilbert order keeps both coordinates local across a spectrum of
// cache granularities, unlike row-major order which is local only in the
// destination.

// HilbertD2XY converts a distance d along a Hilbert curve of order k
// (covering a 2^k × 2^k grid) to (x, y) coordinates. Standard iterative
// construction (Warren / Wikipedia formulation).
func HilbertD2XY(k uint, d uint64) (x, y uint32) {
	var rx, ry uint64
	t := d
	for s := uint64(1); s < 1<<k; s <<= 1 {
		rx = 1 & (t / 2)
		ry = 1 & (t ^ rx)
		x64, y64 := uint64(x), uint64(y)
		x64, y64 = hilbertRot(s, x64, y64, rx, ry)
		x64 += s * rx
		y64 += s * ry
		x, y = uint32(x64), uint32(y64)
		t /= 4
	}
	return x, y
}

// HilbertXY2D converts (x, y) on a 2^k × 2^k grid to the distance along the
// Hilbert curve of order k.
func HilbertXY2D(k uint, x, y uint32) uint64 {
	var d uint64
	x64, y64 := uint64(x), uint64(y)
	for s := uint64(1) << (k - 1); s > 0; s >>= 1 {
		var rx, ry uint64
		if x64&s > 0 {
			rx = 1
		}
		if y64&s > 0 {
			ry = 1
		}
		d += s * s * ((3 * rx) ^ ry)
		x64, y64 = hilbertRot(s, x64, y64, rx, ry)
	}
	return d
}

func hilbertRot(s, x, y, rx, ry uint64) (uint64, uint64) {
	if ry == 0 {
		if rx == 1 {
			x = s - 1 - x
			y = s - 1 - y
		}
		x, y = y, x
	}
	return x, y
}

// hilbertOrderFor returns the curve order needed to cover an n×m grid.
func hilbertOrderFor(n, m int) uint {
	side := max(n, m)
	if side <= 1 {
		return 1
	}
	return uint(bits.Len(uint(side - 1)))
}

// HilbertOrder returns a permutation of a's edges (as positions into a
// row-major edge enumeration) sorted by Hilbert distance of (dst, src).
// The returned slices give, for each visit position, the destination row,
// source column, edge id and value.
type HilbertEdges struct {
	Row []int32
	Col []int32
	EID []int32
	Val []float32
}

// Hilbert produces the edges of a in Hilbert-curve order.
func Hilbert(a *sparse.CSR) *HilbertEdges {
	k := hilbertOrderFor(a.NumRows, a.NumCols)
	nnz := a.NNZ()
	type rec struct {
		key uint64
		pos int32
	}
	recs := make([]rec, nnz)
	rows := make([]int32, nnz)
	for r := 0; r < a.NumRows; r++ {
		for p := a.RowPtr[r]; p < a.RowPtr[r+1]; p++ {
			rows[p] = int32(r)
			recs[p] = rec{HilbertXY2D(k, uint32(r), uint32(a.ColIdx[p])), p}
		}
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].key < recs[j].key })
	out := &HilbertEdges{
		Row: make([]int32, nnz),
		Col: make([]int32, nnz),
		EID: make([]int32, nnz),
		Val: make([]float32, nnz),
	}
	for i, rc := range recs {
		out.Row[i] = rows[rc.pos]
		out.Col[i] = a.ColIdx[rc.pos]
		out.EID[i] = a.EID[rc.pos]
		out.Val[i] = a.Val[rc.pos]
	}
	return out
}

// Locality scores an edge visit order by summing |Δrow| + |Δcol| between
// consecutive edges — a proxy for cache misses on the two feature matrices.
// Lower is better. Exposed so tests and benches can compare orderings.
func (h *HilbertEdges) Locality() uint64 {
	var sum uint64
	for i := 1; i < len(h.Row); i++ {
		sum += absDiff(h.Row[i], h.Row[i-1]) + absDiff(h.Col[i], h.Col[i-1])
	}
	return sum
}

// RowMajorEdges lists a's edges in row-major (CSR) order with the same
// layout as Hilbert, for baseline comparison.
func RowMajorEdges(a *sparse.CSR) *HilbertEdges {
	nnz := a.NNZ()
	out := &HilbertEdges{
		Row: make([]int32, nnz),
		Col: append([]int32(nil), a.ColIdx...),
		EID: append([]int32(nil), a.EID...),
		Val: append([]float32(nil), a.Val...),
	}
	for r := 0; r < a.NumRows; r++ {
		for p := a.RowPtr[r]; p < a.RowPtr[r+1]; p++ {
			out.Row[p] = int32(r)
		}
	}
	return out
}

func absDiff(a, b int32) uint64 {
	if a > b {
		return uint64(a - b)
	}
	return uint64(b - a)
}
