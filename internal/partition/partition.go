// Package partition implements the graph-traversal optimizations FeatGraph
// builds into its sparse templates (§III-C1 and §III-C3 of the paper):
//
//   - 1D graph partitioning: split source vertices (CSR columns) into
//     contiguous segments so each segment's feature rows fit in cache.
//   - Feature dimension tiling: process the feature axis in tiles so more
//     vertices fit in cache per segment, trading extra topology traversals
//     for fewer intermediate merges (Figure 6).
//   - Hybrid partitioning: reorder source vertices into low-degree and
//     high-degree parts by a degree threshold and only partition the
//     high-degree part into shared-memory-sized chunks (GPU, §III-C3).
//   - Hilbert-curve edge ordering: traverse edges along a Hilbert curve so
//     both source and destination feature accesses stay local (edge-wise
//     computations, §III-C1).
package partition

import (
	"fmt"
	"sort"

	"featgraph/internal/sparse"
)

// Range is a half-open interval [Lo, Hi).
type Range struct {
	Lo, Hi int
}

// Len returns the number of elements in the range.
func (r Range) Len() int { return r.Hi - r.Lo }

// Partition1D is the result of 1D source-vertex partitioning: for each
// column segment, a CSR containing only the edges whose source falls in
// that segment. Column indices remain global so kernels index the original
// feature matrix directly; locality follows from each segment's columns
// spanning a narrow range.
type Partition1D struct {
	ColRanges []Range
	Parts     []*sparse.CSR
}

// NumParts returns the number of column segments.
func (p *Partition1D) NumParts() int { return len(p.Parts) }

// OneD splits the columns of a into numParts contiguous, equal-width
// segments and extracts the per-segment sub-matrices. numParts is clamped
// to [1, NumCols]. Total edges are conserved across parts and each part's
// rows remain sorted by column.
func OneD(a *sparse.CSR, numParts int) *Partition1D {
	if numParts < 1 {
		numParts = 1
	}
	if numParts > a.NumCols && a.NumCols > 0 {
		numParts = a.NumCols
	}
	boundaries := make([]int32, numParts+1)
	for p := 0; p <= numParts; p++ {
		boundaries[p] = int32(p * a.NumCols / numParts)
	}
	return byColumnBoundaries(a, boundaries)
}

// byColumnBoundaries extracts sub-CSRs for the column intervals
// [boundaries[p], boundaries[p+1]). Rows of a must be sorted by column,
// which sparse.FromCOO guarantees.
func byColumnBoundaries(a *sparse.CSR, boundaries []int32) *Partition1D {
	numParts := len(boundaries) - 1
	out := &Partition1D{
		ColRanges: make([]Range, numParts),
		Parts:     make([]*sparse.CSR, numParts),
	}
	// rowStart[p][r] is the index of the first edge of row r with
	// column >= boundaries[p], found by binary search within the row.
	rowStart := make([][]int32, numParts+1)
	for p := range rowStart {
		rowStart[p] = make([]int32, a.NumRows)
	}
	for r := 0; r < a.NumRows; r++ {
		lo, hi := a.RowPtr[r], a.RowPtr[r+1]
		seg := a.ColIdx[lo:hi]
		for p := 0; p <= numParts; p++ {
			b := boundaries[p]
			idx := sort.Search(len(seg), func(i int) bool { return seg[i] >= b })
			rowStart[p][r] = lo + int32(idx)
		}
	}
	for p := 0; p < numParts; p++ {
		out.ColRanges[p] = Range{int(boundaries[p]), int(boundaries[p+1])}
		nnz := 0
		for r := 0; r < a.NumRows; r++ {
			nnz += int(rowStart[p+1][r] - rowStart[p][r])
		}
		part := &sparse.CSR{
			NumRows: a.NumRows,
			NumCols: a.NumCols,
			RowPtr:  make([]int32, a.NumRows+1),
			ColIdx:  make([]int32, 0, nnz),
			EID:     make([]int32, 0, nnz),
			Val:     make([]float32, 0, nnz),
		}
		for r := 0; r < a.NumRows; r++ {
			s, e := rowStart[p][r], rowStart[p+1][r]
			part.ColIdx = append(part.ColIdx, a.ColIdx[s:e]...)
			part.EID = append(part.EID, a.EID[s:e]...)
			part.Val = append(part.Val, a.Val[s:e]...)
			part.RowPtr[r+1] = int32(len(part.ColIdx))
		}
		out.Parts[p] = part
	}
	return out
}

// FeatureTiles splits a feature dimension of length d into contiguous tiles
// of at most factor elements. factor <= 0 or factor >= d yields one tile.
func FeatureTiles(d, factor int) []Range {
	if factor <= 0 || factor >= d {
		return []Range{{0, d}}
	}
	var tiles []Range
	for lo := 0; lo < d; lo += factor {
		hi := min(lo+factor, d)
		tiles = append(tiles, Range{lo, hi})
	}
	return tiles
}

// ColumnDegrees returns, for each column of a, the number of stored
// entries in that column (the out-degree of each source vertex).
func ColumnDegrees(a *sparse.CSR) []int32 {
	deg := make([]int32, a.NumCols)
	for _, c := range a.ColIdx {
		deg[c]++
	}
	return deg
}

// HybridPlan describes hybrid degree-based partitioning. Columns are
// conceptually reordered into low-degree then high-degree; only the
// high-degree section is partitioned into shared-memory-sized chunks.
// Rather than physically permuting the matrix, the plan lists the actual
// column ids of each chunk, and Parts holds the corresponding sub-matrices:
// Parts[0] covers all low-degree columns; Parts[1:] each cover one
// high-degree chunk whose feature rows fit in shared memory.
type HybridPlan struct {
	Threshold int32     // degree threshold separating low from high
	LowCols   int       // number of low-degree columns
	ChunkCols [][]int32 // column ids per high-degree chunk
	Parts     []*sparse.CSR
}

// Hybrid builds a hybrid partitioning of a. Columns with degree >=
// threshold are "high-degree" and are grouped into chunks of at most
// chunkCols columns each (chunkCols = shared memory capacity / feature
// tile length, decided by the caller). Low-degree columns form a single
// unpartitioned part processed straight from global memory.
func Hybrid(a *sparse.CSR, threshold int32, chunkCols int) (*HybridPlan, error) {
	if chunkCols < 1 {
		return nil, fmt.Errorf("partition: hybrid chunkCols must be >= 1, got %d", chunkCols)
	}
	deg := ColumnDegrees(a)
	var low, high []int32
	for c := int32(0); c < int32(a.NumCols); c++ {
		if deg[c] >= threshold {
			high = append(high, c)
		} else {
			low = append(low, c)
		}
	}
	plan := &HybridPlan{Threshold: threshold, LowCols: len(low)}
	for lo := 0; lo < len(high); lo += chunkCols {
		hi := min(lo+chunkCols, len(high))
		plan.ChunkCols = append(plan.ChunkCols, high[lo:hi])
	}
	lowSet := make([]bool, a.NumCols)
	for _, c := range low {
		lowSet[c] = true
	}
	plan.Parts = append(plan.Parts, extractColumns(a, func(c int32) bool { return lowSet[c] }))
	for _, chunk := range plan.ChunkCols {
		inChunk := make(map[int32]bool, len(chunk))
		for _, c := range chunk {
			inChunk[c] = true
		}
		plan.Parts = append(plan.Parts, extractColumns(a, func(c int32) bool { return inChunk[c] }))
	}
	return plan, nil
}

// extractColumns returns the sub-matrix of a containing exactly the edges
// whose column satisfies keep. Column ids remain global.
func extractColumns(a *sparse.CSR, keep func(int32) bool) *sparse.CSR {
	part := &sparse.CSR{
		NumRows: a.NumRows,
		NumCols: a.NumCols,
		RowPtr:  make([]int32, a.NumRows+1),
	}
	for r := 0; r < a.NumRows; r++ {
		for p := a.RowPtr[r]; p < a.RowPtr[r+1]; p++ {
			if keep(a.ColIdx[p]) {
				part.ColIdx = append(part.ColIdx, a.ColIdx[p])
				part.EID = append(part.EID, a.EID[p])
				part.Val = append(part.Val, a.Val[p])
			}
		}
		part.RowPtr[r+1] = int32(len(part.ColIdx))
	}
	return part
}
