// Package partition implements the graph-traversal optimizations FeatGraph
// builds into its sparse templates (§III-C1 and §III-C3 of the paper):
//
//   - 1D graph partitioning: split source vertices (CSR columns) into
//     contiguous segments so each segment's feature rows fit in cache.
//   - Feature dimension tiling: process the feature axis in tiles so more
//     vertices fit in cache per segment, trading extra topology traversals
//     for fewer intermediate merges (Figure 6).
//   - Hybrid partitioning: reorder source vertices into low-degree and
//     high-degree parts by a degree threshold and only partition the
//     high-degree part into shared-memory-sized chunks (GPU, §III-C3).
//   - Hilbert-curve edge ordering: traverse edges along a Hilbert curve so
//     both source and destination feature accesses stay local (edge-wise
//     computations, §III-C1).
package partition

import (
	"fmt"
	"sort"

	"featgraph/internal/sparse"
)

// Range is a half-open interval [Lo, Hi).
type Range struct {
	Lo, Hi int
}

// Len returns the number of elements in the range.
func (r Range) Len() int { return r.Hi - r.Lo }

// Partition1D is the result of 1D source-vertex partitioning: for each
// column segment, a CSR containing only the edges whose source falls in
// that segment. Column indices remain global so kernels index the original
// feature matrix directly; locality follows from each segment's columns
// spanning a narrow range.
type Partition1D struct {
	ColRanges []Range
	Parts     []*sparse.CSR
}

// NumParts returns the number of column segments.
func (p *Partition1D) NumParts() int { return len(p.Parts) }

// OneD splits the columns of a into numParts contiguous, equal-width
// segments and extracts the per-segment sub-matrices. numParts is clamped
// to [1, max(NumCols, 1)] — a zero-column matrix yields exactly one
// (empty) part rather than numParts duplicates of it. Total edges are
// conserved across parts and each part's rows remain sorted by column.
func OneD(a *sparse.CSR, numParts int) *Partition1D {
	if numParts < 1 {
		numParts = 1
	}
	if numParts > max(a.NumCols, 1) {
		numParts = max(a.NumCols, 1)
	}
	boundaries := make([]int32, numParts+1)
	for p := 0; p <= numParts; p++ {
		boundaries[p] = int32(p * a.NumCols / numParts)
	}
	return byColumnBoundaries(a, boundaries)
}

// byColumnBoundaries extracts sub-CSRs for the column intervals
// [boundaries[p], boundaries[p+1]). Rows of a must be sorted by column,
// which sparse.FromCOO guarantees.
func byColumnBoundaries(a *sparse.CSR, boundaries []int32) *Partition1D {
	numParts := len(boundaries) - 1
	out := &Partition1D{
		ColRanges: make([]Range, numParts),
		Parts:     make([]*sparse.CSR, numParts),
	}
	// rowStart[p][r] is the index of the first edge of row r with
	// column >= boundaries[p], found by binary search within the row.
	rowStart := make([][]int32, numParts+1)
	for p := range rowStart {
		rowStart[p] = make([]int32, a.NumRows)
	}
	for r := 0; r < a.NumRows; r++ {
		lo, hi := a.RowPtr[r], a.RowPtr[r+1]
		seg := a.ColIdx[lo:hi]
		for p := 0; p <= numParts; p++ {
			b := boundaries[p]
			idx := sort.Search(len(seg), func(i int) bool { return seg[i] >= b })
			rowStart[p][r] = lo + int32(idx)
		}
	}
	for p := 0; p < numParts; p++ {
		out.ColRanges[p] = Range{int(boundaries[p]), int(boundaries[p+1])}
		nnz := 0
		for r := 0; r < a.NumRows; r++ {
			nnz += int(rowStart[p+1][r] - rowStart[p][r])
		}
		part := &sparse.CSR{
			NumRows: a.NumRows,
			NumCols: a.NumCols,
			RowPtr:  make([]int32, a.NumRows+1),
			ColIdx:  make([]int32, 0, nnz),
			EID:     make([]int32, 0, nnz),
			Val:     make([]float32, 0, nnz),
		}
		for r := 0; r < a.NumRows; r++ {
			s, e := rowStart[p][r], rowStart[p+1][r]
			part.ColIdx = append(part.ColIdx, a.ColIdx[s:e]...)
			part.EID = append(part.EID, a.EID[s:e]...)
			part.Val = append(part.Val, a.Val[s:e]...)
			part.RowPtr[r+1] = int32(len(part.ColIdx))
		}
		out.Parts[p] = part
	}
	return out
}

// FeatureTiles splits a feature dimension of length d into contiguous tiles
// of at most factor elements. factor <= 0 or factor >= d yields one tile.
func FeatureTiles(d, factor int) []Range {
	if factor <= 0 || factor >= d {
		return []Range{{0, d}}
	}
	var tiles []Range
	for lo := 0; lo < d; lo += factor {
		hi := min(lo+factor, d)
		tiles = append(tiles, Range{lo, hi})
	}
	return tiles
}

// ColumnDegrees returns, for each column of a, the number of stored
// entries in that column (the out-degree of each source vertex).
func ColumnDegrees(a *sparse.CSR) []int32 {
	deg := make([]int32, a.NumCols)
	for _, c := range a.ColIdx {
		deg[c]++
	}
	return deg
}

// HybridPlan describes hybrid degree-based partitioning. Columns are
// conceptually reordered into low-degree then high-degree; only the
// high-degree section is partitioned into shared-memory-sized chunks.
// Rather than physically permuting the matrix, the plan lists the actual
// column ids of each chunk, and Parts holds the corresponding sub-matrices:
// Parts[0] covers all low-degree columns; Parts[1:] each cover one
// high-degree chunk whose feature rows fit in shared memory.
type HybridPlan struct {
	Threshold int32     // degree threshold separating low from high
	LowCols   int       // number of low-degree columns
	ChunkCols [][]int32 // column ids per high-degree chunk
	Parts     []*sparse.CSR
}

// Hybrid builds a hybrid partitioning of a. Columns with degree >=
// threshold are "high-degree" and are grouped into chunks of at most
// chunkCols columns each (chunkCols = shared memory capacity / feature
// tile length, decided by the caller). Low-degree columns form a single
// unpartitioned part processed straight from global memory.
func Hybrid(a *sparse.CSR, threshold int32, chunkCols int) (*HybridPlan, error) {
	if chunkCols < 1 {
		return nil, fmt.Errorf("partition: hybrid chunkCols must be >= 1, got %d", chunkCols)
	}
	deg := ColumnDegrees(a)
	var low, high []int32
	for c := int32(0); c < int32(a.NumCols); c++ {
		if deg[c] >= threshold {
			high = append(high, c)
		} else {
			low = append(low, c)
		}
	}
	plan := &HybridPlan{Threshold: threshold, LowCols: len(low)}
	for lo := 0; lo < len(high); lo += chunkCols {
		hi := min(lo+chunkCols, len(high))
		plan.ChunkCols = append(plan.ChunkCols, high[lo:hi])
	}
	// Single extraction pass over the edges via a column→part lookup
	// table: part 0 is the low-degree part, part 1+i is high-degree chunk
	// i. The earlier implementation rescanned all of a's edges once per
	// chunk through a per-chunk map — O(nnz × parts) with a map lookup on
	// the hot path, quadratic in practice for many-chunk GPU plans. The
	// table costs one int32 per column and makes extraction O(nnz + rows ×
	// parts), the latter term being the per-part RowPtr arrays the output
	// shape requires anyway.
	numParts := 1 + len(plan.ChunkCols)
	partOf := make([]int32, a.NumCols)
	for ci, chunk := range plan.ChunkCols {
		for _, c := range chunk {
			partOf[c] = int32(ci + 1)
		}
	}
	// Pre-size each part's edge arrays from per-part counts so the fill
	// pass appends without reallocation.
	counts := make([]int32, numParts)
	for _, c := range a.ColIdx {
		counts[partOf[c]]++
	}
	plan.Parts = make([]*sparse.CSR, numParts)
	for p := range plan.Parts {
		plan.Parts[p] = &sparse.CSR{
			NumRows: a.NumRows,
			NumCols: a.NumCols,
			RowPtr:  make([]int32, a.NumRows+1),
			ColIdx:  make([]int32, 0, counts[p]),
			EID:     make([]int32, 0, counts[p]),
			Val:     make([]float32, 0, counts[p]),
		}
	}
	for r := 0; r < a.NumRows; r++ {
		for p := a.RowPtr[r]; p < a.RowPtr[r+1]; p++ {
			c := a.ColIdx[p]
			pt := plan.Parts[partOf[c]]
			pt.ColIdx = append(pt.ColIdx, c)
			pt.EID = append(pt.EID, a.EID[p])
			pt.Val = append(pt.Val, a.Val[p])
		}
		for _, pt := range plan.Parts {
			pt.RowPtr[r+1] = int32(len(pt.ColIdx))
		}
	}
	return plan, nil
}
