package partition

import (
	"math/rand"
	"testing"
	"testing/quick"

	"featgraph/internal/sparse"
)

// hybridReference reproduces the replaced Hybrid extraction semantics: one
// full edge scan per part through a membership map. It is deliberately the
// slow O(nnz × parts) formulation — the rewrite must match it bit for bit,
// only faster.
func hybridReference(a *sparse.CSR, threshold int32, chunkCols int) *HybridPlan {
	deg := ColumnDegrees(a)
	var low, high []int32
	for c := int32(0); c < int32(a.NumCols); c++ {
		if deg[c] >= threshold {
			high = append(high, c)
		} else {
			low = append(low, c)
		}
	}
	plan := &HybridPlan{Threshold: threshold, LowCols: len(low)}
	for lo := 0; lo < len(high); lo += chunkCols {
		hi := min(lo+chunkCols, len(high))
		plan.ChunkCols = append(plan.ChunkCols, high[lo:hi])
	}
	colSets := make([]map[int32]bool, 1+len(plan.ChunkCols))
	colSets[0] = make(map[int32]bool, len(low))
	for _, c := range low {
		colSets[0][c] = true
	}
	for i, chunk := range plan.ChunkCols {
		colSets[i+1] = make(map[int32]bool, len(chunk))
		for _, c := range chunk {
			colSets[i+1][c] = true
		}
	}
	for _, set := range colSets {
		part := &sparse.CSR{
			NumRows: a.NumRows,
			NumCols: a.NumCols,
			RowPtr:  make([]int32, a.NumRows+1),
		}
		for r := 0; r < a.NumRows; r++ {
			for p := a.RowPtr[r]; p < a.RowPtr[r+1]; p++ {
				if set[a.ColIdx[p]] {
					part.ColIdx = append(part.ColIdx, a.ColIdx[p])
					part.EID = append(part.EID, a.EID[p])
					part.Val = append(part.Val, a.Val[p])
				}
			}
			part.RowPtr[r+1] = int32(len(part.ColIdx))
		}
		plan.Parts = append(plan.Parts, part)
	}
	return plan
}

func sameCSRBits(a, b *sparse.CSR) bool {
	if a.NumRows != b.NumRows || a.NumCols != b.NumCols || a.NNZ() != b.NNZ() {
		return false
	}
	for r := 0; r <= a.NumRows; r++ {
		if a.RowPtr[r] != b.RowPtr[r] {
			return false
		}
	}
	for i := range a.ColIdx {
		if a.ColIdx[i] != b.ColIdx[i] || a.EID[i] != b.EID[i] || a.Val[i] != b.Val[i] {
			return false
		}
	}
	return true
}

// The single-pass Hybrid rewrite is pinned against the old per-chunk-scan
// semantics: same parts, same edge order, same values, across degree
// skews and chunk widths.
func TestHybridMatchesReferenceImplementation(t *testing.T) {
	for _, tc := range []struct {
		seed      int64
		n, deg    int
		threshold int32
		chunkCols int
	}{
		{seed: 20, n: 60, deg: 6, threshold: 5, chunkCols: 4},
		{seed: 21, n: 40, deg: 3, threshold: 1, chunkCols: 1},  // everything high, 1-col chunks
		{seed: 22, n: 40, deg: 3, threshold: 99, chunkCols: 8}, // everything low
		{seed: 23, n: 80, deg: 10, threshold: 9, chunkCols: 16},
	} {
		rng := rand.New(rand.NewSource(tc.seed))
		a := sparse.Random(rng, tc.n, tc.n, tc.deg)
		for i := range a.Val {
			a.Val[i] = rng.Float32()
		}
		got, err := Hybrid(a, tc.threshold, tc.chunkCols)
		if err != nil {
			t.Fatal(err)
		}
		want := hybridReference(a, tc.threshold, tc.chunkCols)
		if got.LowCols != want.LowCols || len(got.ChunkCols) != len(want.ChunkCols) {
			t.Fatalf("seed %d: plan shape differs: lowCols %d/%d chunks %d/%d",
				tc.seed, got.LowCols, want.LowCols, len(got.ChunkCols), len(want.ChunkCols))
		}
		if len(got.Parts) != len(want.Parts) {
			t.Fatalf("seed %d: %d parts, reference has %d", tc.seed, len(got.Parts), len(want.Parts))
		}
		for p := range got.Parts {
			if !sameCSRBits(got.Parts[p], want.Parts[p]) {
				t.Fatalf("seed %d: part %d differs from reference extraction", tc.seed, p)
			}
		}
	}
}

func TestHybridPropertyMatchesReference(t *testing.T) {
	f := func(seed int64, thrRaw, chunkRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(30)
		a := sparse.Random(rng, n, n, 1+rng.Intn(6))
		threshold := int32(thrRaw % 12)
		chunkCols := 1 + int(chunkRaw)%7
		got, err := Hybrid(a, threshold, chunkCols)
		if err != nil {
			return false
		}
		want := hybridReference(a, threshold, chunkCols)
		if len(got.Parts) != len(want.Parts) {
			return false
		}
		for p := range got.Parts {
			if !sameCSRBits(got.Parts[p], want.Parts[p]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// BenchmarkHybridManyChunks exercises the regime that was quadratic: a
// high-degree graph cut into single-column chunks, so parts ≈ columns. The
// old extraction rescanned every edge once per chunk; the rewrite visits
// each edge once regardless of chunk count.
func BenchmarkHybridManyChunks(b *testing.B) {
	rng := rand.New(rand.NewSource(30))
	a := sparse.Random(rng, 2000, 2000, 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Hybrid(a, 1, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// --- OneD degenerate shapes (the zero-column clamp regression) ---

func TestOneDZeroColumns(t *testing.T) {
	a := &sparse.CSR{NumRows: 5, NumCols: 0, RowPtr: make([]int32, 6)}
	for _, parts := range []int{0, 1, 3, 100} {
		p := OneD(a, parts)
		if p.NumParts() != 1 {
			t.Fatalf("parts=%d: zero-column matrix must yield 1 part, got %d", parts, p.NumParts())
		}
		if p.Parts[0].NNZ() != 0 || p.Parts[0].NumRows != 5 {
			t.Fatalf("parts=%d: degenerate part has wrong shape", parts)
		}
	}
}

func TestOneDZeroEdges(t *testing.T) {
	a := &sparse.CSR{NumRows: 4, NumCols: 10, RowPtr: make([]int32, 5)}
	p := OneD(a, 3)
	if p.NumParts() != 3 {
		t.Fatalf("NumParts = %d, want 3", p.NumParts())
	}
	total := 0
	for _, part := range p.Parts {
		if err := part.Validate(); err != nil {
			t.Fatal(err)
		}
		total += part.NNZ()
	}
	if total != 0 {
		t.Fatalf("zero-edge graph grew %d edges", total)
	}
	if p.ColRanges[0].Lo != 0 || p.ColRanges[2].Hi != 10 {
		t.Fatalf("ranges do not cover columns: %v", p.ColRanges)
	}
}

// byColumnBoundaries must place every edge in exactly the part whose
// column range contains it — a disjoint cover, for arbitrary interior cut
// points, not just OneD's equal-width ones.
func TestByColumnBoundariesDisjointCover(t *testing.T) {
	f := func(seed int64, cutsRaw []uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(30)
		a := sparse.Random(rng, n, n, 1+rng.Intn(5))
		// Arbitrary sorted interior cuts in [0, NumCols].
		boundaries := []int32{0}
		for _, c := range cutsRaw {
			boundaries = append(boundaries, int32(int(c)%(a.NumCols+1)))
		}
		boundaries = append(boundaries, int32(a.NumCols))
		for i := 1; i < len(boundaries); i++ {
			for j := i; j > 0 && boundaries[j] < boundaries[j-1]; j-- {
				boundaries[j], boundaries[j-1] = boundaries[j-1], boundaries[j]
			}
		}
		p := byColumnBoundaries(a, boundaries)
		seen := make(map[int32]int)
		for pi, part := range p.Parts {
			lo, hi := boundaries[pi], boundaries[pi+1]
			for _, c := range part.ColIdx {
				if c < lo || c >= hi {
					return false
				}
			}
			for _, e := range part.EID {
				seen[e]++
			}
		}
		if len(seen) != a.NNZ() {
			return false
		}
		for _, count := range seen {
			if count != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// --- EdgeShards / ExtractShard (the out-of-core cut) ---

func TestEdgeShardsExactCover(t *testing.T) {
	f := func(seed int64, targetRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(50)
		a := sparse.Random(rng, n, n, rng.Intn(8))
		target := 1 + int(targetRaw)%32
		shards := EdgeShards(a, target)
		if a.NNZ() == 0 {
			return len(shards) == 1 && shards[0].RowLo == 0 && shards[0].RowHi == a.NumRows && shards[0].NNZ() == 0
		}
		prev := 0
		for _, s := range shards {
			if s.EdgeLo != prev || s.EdgeHi <= s.EdgeLo || s.NNZ() > target {
				return false
			}
			// Row span must agree with the edge span: the first row
			// intersecting EdgeLo, one past the last row before EdgeHi.
			if int(a.RowPtr[s.RowHi]) < s.EdgeHi || (s.RowLo < a.NumRows && int(a.RowPtr[s.RowLo+1]) <= s.EdgeLo) {
				return false
			}
			prev = s.EdgeHi
		}
		return prev == a.NNZ()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// A row heavier than the shard target must split, with the boundary row
// shared by adjacent shards.
func TestEdgeShardsSplitHeavyRow(t *testing.T) {
	// Row 0 owns all 20 edges; target 6 forces a split across 4 shards.
	coo := &sparse.COO{NumRows: 3, NumCols: 20}
	for c := int32(0); c < 20; c++ {
		coo.Row = append(coo.Row, 0)
		coo.Col = append(coo.Col, c)
	}
	a, err := sparse.FromCOO(coo)
	if err != nil {
		t.Fatal(err)
	}
	shards := EdgeShards(a, 6)
	if len(shards) < 2 {
		t.Fatalf("heavy row did not split: %v", shards)
	}
	for i, s := range shards {
		if s.RowLo != 0 {
			t.Fatalf("shard %d should start at the split row: %+v", i, s)
		}
	}
	for i := 1; i < len(shards); i++ {
		if shards[i].RowLo >= shards[i-1].RowHi {
			t.Fatalf("adjacent shards %d/%d do not share the boundary row", i-1, i)
		}
	}
}

func TestExtractShardMatchesGlobal(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	a := sparse.Random(rng, 40, 35, 5)
	for i := range a.Val {
		a.Val[i] = rng.Float32()
	}
	for _, s := range EdgeShards(a, 16) {
		part := ExtractShard(a, s)
		if part.NumRows != s.Rows() || part.NNZ() != s.NNZ() {
			t.Fatalf("shard %+v extracted wrong shape", s)
		}
		for r := 0; r < part.NumRows; r++ {
			glo := max(int(a.RowPtr[s.RowLo+r]), s.EdgeLo)
			ghi := min(int(a.RowPtr[s.RowLo+r+1]), s.EdgeHi)
			lo, hi := int(part.RowPtr[r]), int(part.RowPtr[r+1])
			if hi-lo != ghi-glo {
				t.Fatalf("shard %+v local row %d has %d edges, want %d", s, r, hi-lo, ghi-glo)
			}
			for k := 0; k < hi-lo; k++ {
				if part.ColIdx[lo+k] != a.ColIdx[glo+k] || part.EID[lo+k] != a.EID[glo+k] || part.Val[lo+k] != a.Val[glo+k] {
					t.Fatalf("shard %+v local row %d edge %d differs from global", s, r, k)
				}
			}
		}
	}
}
