package core

import (
	"featgraph/internal/codegen"
	"featgraph/internal/expr"
	"featgraph/internal/sparse"
	"featgraph/internal/tensor"
)

// Reference implementations: straightforward single-threaded evaluations of
// the generalized SpMM/SDDMM semantics with no scheduling. Every optimized
// path in this package is tested against these.

// ReferenceSpMM computes out[v] = agg over in-edges (u→v, eid e) of
// udf(u, v, e), with isolated vertices aggregating to zero.
func ReferenceSpMM(adj *sparse.CSR, udf *expr.UDF, inputs []*tensor.Tensor, agg AggOp) (*tensor.Tensor, error) {
	if err := validateBindings(adj.NumRows, adj.NumCols, int64(adj.NNZ()), udf, inputs); err != nil {
		return nil, err
	}
	c, err := codegen.Compile(udf, inputs)
	if err != nil {
		return nil, err
	}
	outLen := c.OutLen()
	out := tensor.New(adj.NumRows, outLen)
	out.Fill(agg.identity())
	env := c.NewEnv()
	msg := make([]float32, outLen)
	for r := 0; r < adj.NumRows; r++ {
		for p := adj.RowPtr[r]; p < adj.RowPtr[r+1]; p++ {
			c.EvalAll(env, adj.ColIdx[p], int32(r), adj.EID[p], msg)
			aggInto(agg, out.Row(r), msg)
		}
	}
	finalizeAgg(agg, out, adj, 0, adj.NumRows)
	return out, nil
}

// ReferenceSDDMM computes out[e] = udf(u, v, e) for every edge u→v with id
// e, producing an |E|×outLen tensor indexed by global edge id.
func ReferenceSDDMM(adj *sparse.CSR, udf *expr.UDF, inputs []*tensor.Tensor) (*tensor.Tensor, error) {
	if err := validateBindings(adj.NumRows, adj.NumCols, int64(adj.NNZ()), udf, inputs); err != nil {
		return nil, err
	}
	c, err := codegen.Compile(udf, inputs)
	if err != nil {
		return nil, err
	}
	outLen := c.OutLen()
	out := tensor.New(adj.NNZ(), outLen)
	env := c.NewEnv()
	for r := 0; r < adj.NumRows; r++ {
		for p := adj.RowPtr[r]; p < adj.RowPtr[r+1]; p++ {
			eid := adj.EID[p]
			c.EvalAll(env, adj.ColIdx[p], int32(r), eid, out.Row(int(eid)))
		}
	}
	return out, nil
}
