package core

import "math"

// Float32 math for kernel hot loops. The dgl-level exp32 routes through a
// float64 math.Exp round-trip, which is fine for the 3-pass edge softmax
// (one call per edge amid allocation-heavy staging) but dominates the fused
// attention kernel's inner loop, where every edge pays two exponentials with
// no staging to hide behind. Expf32 is a Cephes-style pure-float32
// polynomial expf: branch-light, no float64 conversions, vectorization-
// friendly when applied over a row's score scratch (ExpSliceF32), and
// accurate to a few ULPs — far inside the oracle's comparison tolerance
// (see oracle.DefaultTol and the accuracy test in mathf_test.go).

// Argument bounds: exp(x) overflows float32 above ~88.72 and underflows to
// zero below ~-87.34 (subnormals excluded by the -87 cut, which keeps the
// 2^k scaling in the normal range).
const (
	expf32Log2e = 1.44269504088896341
	// ln2 split into a coarse and a correction part so r = x - k*ln2 is
	// computed without cancellation error (Cody-Waite reduction).
	expf32Ln2Hi = 0.693359375
	expf32Ln2Lo = -2.12194440e-4

	expf32OverflowX  = 88.72
	expf32UnderflowX = -87.0
)

// Expf32 returns e**x computed entirely in float32. NaN propagates; inputs
// past the overflow/underflow bounds saturate to +Inf/0 like math.Exp.
func Expf32(x float32) float32 {
	switch {
	case x != x: // NaN
		return x
	case x > expf32OverflowX:
		return float32(math.Inf(1))
	case x < expf32UnderflowX:
		return 0
	}
	// k = round(x / ln2); r = x - k*ln2 in [-ln2/2, ln2/2].
	kf := floorf32(float32(expf32Log2e)*x + 0.5)
	r := x - kf*float32(expf32Ln2Hi)
	r -= kf * float32(expf32Ln2Lo)
	// Degree-5 minimax polynomial for exp(r)-1-r (Cephes expf coefficients).
	p := float32(1.9875691500e-4)
	p = p*r + 1.3981999507e-3
	p = p*r + 8.3334519073e-3
	p = p*r + 4.1665795894e-2
	p = p*r + 1.6666665459e-1
	p = p*r + 5.0000001201e-1
	z := r*r*p + r + 1
	// Scale by 2^k via direct exponent construction; k is in [-126, 128)
	// thanks to the argument bounds, so k+127 stays a valid biased exponent.
	return z * math.Float32frombits(uint32(int32(kf)+127)<<23)
}

// ExpSliceF32 replaces every element of s with Expf32(s[i]). The polynomial
// body is written out in the loop rather than calling Expf32 — the function
// is past the inlining budget, and a call per element would dominate the
// batch at small feature widths. mathf_test.go pins the two paths to
// identical bit patterns.
func ExpSliceF32(s []float32) {
	for i, x := range s {
		switch {
		case x != x: // NaN propagates
			continue
		case x > expf32OverflowX:
			s[i] = float32(math.Inf(1))
			continue
		case x < expf32UnderflowX:
			s[i] = 0
			continue
		}
		kf := floorf32(float32(expf32Log2e)*x + 0.5)
		r := x - kf*float32(expf32Ln2Hi)
		r -= kf * float32(expf32Ln2Lo)
		p := float32(1.9875691500e-4)
		p = p*r + 1.3981999507e-3
		p = p*r + 8.3334519073e-3
		p = p*r + 4.1665795894e-2
		p = p*r + 1.6666665459e-1
		p = p*r + 5.0000001201e-1
		s[i] = (r*r*p + r + 1) * math.Float32frombits(uint32(int32(kf)+127)<<23)
	}
}

// expShiftSumF32 replaces every element of s with Expf32(s[i]-shift) and
// returns the sum of the results. This is the softmax inner step — shift is
// the row maximum, so every argument is ≤ 0 and nothing overflows — fused
// into a single traversal so the scores scratch is read and written once
// instead of three times (shift, exponentiate, reduce).
func expShiftSumF32(s []float32, shift float32) float32 {
	var sum float32
	for i := range s {
		x := s[i] - shift
		switch {
		case x != x: // NaN propagates, into the sum too
			s[i] = x
			sum += x
			continue
		case x > expf32OverflowX:
			s[i] = float32(math.Inf(1))
			sum += s[i]
			continue
		case x < expf32UnderflowX:
			s[i] = 0
			continue
		}
		kf := floorf32(float32(expf32Log2e)*x + 0.5)
		r := x - kf*float32(expf32Ln2Hi)
		r -= kf * float32(expf32Ln2Lo)
		p := float32(1.9875691500e-4)
		p = p*r + 1.3981999507e-3
		p = p*r + 8.3334519073e-3
		p = p*r + 4.1665795894e-2
		p = p*r + 1.6666665459e-1
		p = p*r + 5.0000001201e-1
		e := (r*r*p + r + 1) * math.Float32frombits(uint32(int32(kf)+127)<<23)
		s[i] = e
		sum += e
	}
	return sum
}

// floorf32 is floor for the bounded arguments Expf32 produces (|x| < 2^31).
func floorf32(x float32) float32 {
	f := float32(int32(x))
	if f > x {
		f--
	}
	return f
}
