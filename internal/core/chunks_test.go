package core

import (
	"math/rand"
	"testing"

	"featgraph/internal/sparse"
)

// Property tests for the engine's chunking policy: for any CSR and any
// requested chunk count, the chunks must exactly tile [0, rows) with no
// overlaps, and edge counts must stay within one maximum row degree (plus
// the integer-division remainder) of the ideal even share. These are the
// invariants the work-stealing dequeue relies on — a gap or overlap means
// rows silently skipped or aggregated twice.

func TestEdgeBalancedChunksProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(404))
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(64)
		adj := sparse.Random(rng, n, n, rng.Intn(6))
		nchunks := 1 + rng.Intn(12)
		chunks := edgeBalancedChunks(adj, nchunks)

		if len(chunks) == 0 {
			t.Fatalf("trial %d: no chunks for %d rows", trial, n)
		}
		lo := 0
		for i, c := range chunks {
			if c.Lo != lo {
				t.Fatalf("trial %d: chunk %d starts at %d, previous ended at %d (gap or overlap)", trial, i, c.Lo, lo)
			}
			if c.Hi <= c.Lo {
				t.Fatalf("trial %d: chunk %d is empty or inverted: [%d,%d)", trial, i, c.Lo, c.Hi)
			}
			lo = c.Hi
		}
		if lo != n {
			t.Fatalf("trial %d: chunks cover [0,%d), want [0,%d)", trial, lo, n)
		}

		maxDeg := 0
		for r := 0; r < n; r++ {
			maxDeg = max(maxDeg, adj.RowDegree(r))
		}
		nnz := adj.NNZ()
		share := nnz / min(nchunks, n)
		for i, c := range chunks {
			edges := int(adj.RowPtr[c.Hi] - adj.RowPtr[c.Lo])
			if edges > share+maxDeg+1 {
				t.Fatalf("trial %d: chunk %d has %d edges, ideal share %d, max degree %d", trial, i, edges, share, maxDeg)
			}
		}
	}
}

// TestEdgeBalancedChunksSkewedRow pins the degenerate case the binary
// search must survive: one row holding every edge forces all later chunk
// targets to be already satisfied, so the remaining rows must still tile
// without gaps.
func TestEdgeBalancedChunksSkewedRow(t *testing.T) {
	const n = 16
	coo := &sparse.COO{NumRows: n, NumCols: n}
	for c := 0; c < n; c++ {
		coo.Row = append(coo.Row, 0)
		coo.Col = append(coo.Col, int32(c))
	}
	adj, err := sparse.FromCOO(coo)
	if err != nil {
		t.Fatal(err)
	}
	chunks := edgeBalancedChunks(adj, 4)
	lo := 0
	for _, c := range chunks {
		if c.Lo != lo {
			t.Fatalf("gap at row %d", lo)
		}
		lo = c.Hi
	}
	if lo != n {
		t.Fatalf("chunks end at %d, want %d", lo, n)
	}
}

func TestNumChunksForBounds(t *testing.T) {
	cases := []struct {
		threads, rows, nnz int
	}{
		{1, 100, 1000},
		{4, 100, 1000},
		{8, 3, 10},
		{4, 1 << 20, 1 << 30},
		{1 << 20, 1 << 20, 1 << 30}, // huge thread request must not wrap
	}
	for _, c := range cases {
		got := numChunksFor(c.threads, c.rows, c.nnz)
		if got < 1 || got > max(c.rows, 1) {
			t.Fatalf("numChunksFor(%d,%d,%d) = %d, outside [1,%d]", c.threads, c.rows, c.nnz, got, c.rows)
		}
		if c.threads <= 1 && got != 1 {
			t.Fatalf("single-threaded should use one chunk, got %d", got)
		}
	}
}
