package core

import (
	"context"
	"fmt"

	"featgraph/internal/tensor"
)

// Kernel is the unified surface of the two sparse templates. SpMMKernel
// and SDDMMKernel both satisfy it, so harnesses that drive "a built
// kernel" — the correctness oracle, dgl's plan cache, telemetry dumpers —
// need not special-case the template types. The concrete types remain
// exported for callers that need template-specific behaviour.
type Kernel interface {
	// Run executes the kernel into out (Run = RunCtx under
	// context.Background()).
	Run(out *tensor.Tensor) (RunStats, error)
	// RunCtx executes the kernel into out under ctx; see the concrete
	// types for cancellation, panic-isolation, and fallback semantics.
	RunCtx(ctx context.Context, out *tensor.Tensor) (RunStats, error)
	// Describe returns a one-line human-readable description of the built
	// kernel (template, aggregation, target, pattern, shape), making
	// telemetry output and divergence reports self-contained.
	Describe() string
	// LastStats returns the statistics of the most recently completed
	// RunCtx (the zero RunStats before any run). It is safe to call
	// concurrently with runs; under concurrent runs it reports the stats
	// of whichever finished last.
	LastStats() RunStats
	// OutShape returns the required output tensor shape.
	OutShape() (rows, cols int)
	// Pattern returns the recognized UDF pattern ("generic" when the
	// compiled path is used).
	Pattern() string
}

// Compile-time interface checks: both template types are Kernels.
var (
	_ Kernel = (*SpMMKernel)(nil)
	_ Kernel = (*SDDMMKernel)(nil)
	_ Kernel = (*FusedAttnKernel)(nil)
	_ Kernel = (*FusedAttnBwdKernel)(nil)
)

// Describe returns a one-line description of the built SpMM kernel.
func (k *SpMMKernel) Describe() string {
	return fmt.Sprintf("spmm{agg:%s target:%s pattern:%s rows:%d nnz:%d out:%d tiles:%d parts:%d}",
		k.agg, k.opts.Target, k.Pattern(), k.adj.NumRows, k.adj.NNZ(), k.outLen, len(k.tiles), len(k.parts))
}

// LastStats returns the statistics of the most recently completed RunCtx.
func (k *SpMMKernel) LastStats() RunStats {
	k.lastMu.Lock()
	defer k.lastMu.Unlock()
	return k.last
}

// Describe returns a one-line description of the built SDDMM kernel.
func (k *SDDMMKernel) Describe() string {
	return fmt.Sprintf("sddmm{target:%s pattern:%s rows:%d nnz:%d out:%d tiles:%d}",
		k.opts.Target, k.Pattern(), k.adj.NumRows, k.adj.NNZ(), k.outLen, len(k.tiles))
}

// LastStats returns the statistics of the most recently completed RunCtx.
func (k *SDDMMKernel) LastStats() RunStats {
	k.lastMu.Lock()
	defer k.lastMu.Unlock()
	return k.last
}
