package core

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"featgraph/internal/cudasim"
	"featgraph/internal/faultinject"
	"featgraph/internal/sparse"
	"featgraph/internal/tensor"
)

// refFusedAttn is the float64 reference for the fused forward: per
// destination row, score = Scale·LeakyReLU(x_src·y_dst), softmax over the
// row's in-edges, weighted sum of source features.
func refFusedAttn(adj *sparse.CSR, x, y *tensor.Tensor, cfg FusedAttnConfig) *tensor.Tensor {
	d := x.Dim(1)
	scale := float64(cfg.Scale)
	if scale == 0 {
		scale = 1
	}
	slope := float64(cfg.NegSlope)
	out := tensor.New(adj.NumRows, d)
	for v := 0; v < adj.NumRows; v++ {
		lo, hi := int(adj.RowPtr[v]), int(adj.RowPtr[v+1])
		if lo == hi {
			continue
		}
		scores := make([]float64, hi-lo)
		maxv := math.Inf(-1)
		for j := range scores {
			u := int(adj.ColIdx[lo+j])
			var dot float64
			for f := 0; f < d; f++ {
				dot += float64(x.At(u, f)) * float64(y.At(v, f))
			}
			s := dot
			if dot <= 0 {
				s *= slope
			}
			s *= scale
			scores[j] = s
			maxv = math.Max(maxv, s)
		}
		var sum float64
		for j := range scores {
			scores[j] = math.Exp(scores[j] - maxv)
			sum += scores[j]
		}
		for j := range scores {
			a := scores[j] / sum
			u := int(adj.ColIdx[lo+j])
			for f := 0; f < d; f++ {
				out.Set(out.At(v, f)+float32(a*float64(x.At(u, f))), v, f)
			}
		}
	}
	return out
}

// refFusedAttnBwd is the float64 analytic reference for the fused backward.
func refFusedAttnBwd(adj *sparse.CSR, x, y, dout *tensor.Tensor, cfg FusedAttnConfig) (dx, dy *tensor.Tensor) {
	d := x.Dim(1)
	scale := float64(cfg.Scale)
	if scale == 0 {
		scale = 1
	}
	slope := float64(cfg.NegSlope)
	dx = tensor.New(adj.NumCols, d)
	dy = tensor.New(adj.NumRows, d)
	for v := 0; v < adj.NumRows; v++ {
		lo, hi := int(adj.RowPtr[v]), int(adj.RowPtr[v+1])
		deg := hi - lo
		if deg == 0 {
			continue
		}
		alpha := make([]float64, deg)
		drv := make([]float64, deg)
		maxv := math.Inf(-1)
		for j := range alpha {
			u := int(adj.ColIdx[lo+j])
			var dot float64
			for f := 0; f < d; f++ {
				dot += float64(x.At(u, f)) * float64(y.At(v, f))
			}
			s, dr := dot, scale
			if dot <= 0 {
				s *= slope
				dr *= slope
			}
			s *= scale
			alpha[j] = s
			drv[j] = dr
			maxv = math.Max(maxv, s)
		}
		var sum float64
		for j := range alpha {
			alpha[j] = math.Exp(alpha[j] - maxv)
			sum += alpha[j]
		}
		dA := make([]float64, deg)
		var rowDot float64
		for j := range alpha {
			alpha[j] /= sum
			u := int(adj.ColIdx[lo+j])
			var s float64
			for f := 0; f < d; f++ {
				s += float64(x.At(u, f)) * float64(dout.At(v, f))
			}
			dA[j] = s
			rowDot += alpha[j] * s
		}
		for j := range alpha {
			u := int(adj.ColIdx[lo+j])
			dE := alpha[j] * (dA[j] - rowDot) * drv[j]
			for f := 0; f < d; f++ {
				dy.Set(dy.At(v, f)+float32(dE*float64(x.At(u, f))), v, f)
				dx.Set(dx.At(u, f)+float32(alpha[j]*float64(dout.At(v, f))+dE*float64(y.At(v, f))), u, f)
			}
		}
	}
	return dx, dy
}

// buildFused builds a forward kernel plus its edge buffers.
func buildFused(t *testing.T, adj *sparse.CSR, x, y *tensor.Tensor, cfg FusedAttnConfig, opts Options) (*FusedAttnKernel, *tensor.Tensor, *tensor.Tensor) {
	t.Helper()
	m := max(adj.NNZ(), 1)
	alpha := tensor.New(m, 1)
	deriv := tensor.New(m, 1)
	k, err := BuildFusedAttention(adj, x, y, alpha, deriv, cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	return k, alpha, deriv
}

var gatCfg = FusedAttnConfig{NegSlope: 0.2, Scale: 0.25}

func TestFusedAttentionMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(40))
	const n, d = 48, 24
	adj := graphWithIsolated(t, rng, n, 6)
	x := randTensor(rng, n, d)
	y := randTensor(rng, n, d)
	want := refFusedAttn(adj, x, y, gatCfg)

	configs := []struct {
		name string
		opts Options
	}{
		{"engine-1t", Options{Target: CPU}},
		{"engine-4t", Options{Target: CPU, NumThreads: 4}},
		{"legacy", Options{Target: CPU, LegacySched: true, NumThreads: 3}},
	}
	for _, cfg := range configs {
		k, alpha, _ := buildFused(t, adj, x, y, gatCfg, cfg.opts)
		out := tensor.New(n, d)
		stats, err := k.Run(out)
		if err != nil {
			t.Fatal(err)
		}
		if !out.AllClose(want, 1e-4) {
			t.Errorf("%s: max diff %v", cfg.name, out.MaxAbsDiff(want))
		}
		if stats.EdgesProcessed != uint64(adj.NNZ()) {
			t.Errorf("%s: EdgesProcessed = %d, want %d", cfg.name, stats.EdgesProcessed, adj.NNZ())
		}
		// The softmax probabilities must sum to 1 over each non-empty row.
		for v := 0; v < n; v++ {
			lo, hi := adj.RowPtr[v], adj.RowPtr[v+1]
			if lo == hi {
				continue
			}
			var sum float64
			for p := lo; p < hi; p++ {
				sum += float64(alpha.At(int(adj.EID[p]), 0))
			}
			if math.Abs(sum-1) > 1e-4 {
				t.Fatalf("%s: row %d alpha sums to %v", cfg.name, v, sum)
			}
		}
	}
}

func TestFusedAttentionExtremeScoresStayFinite(t *testing.T) {
	// Scores large enough that a non-streaming softmax (exp before max
	// subtraction) would overflow to +Inf. The streaming recurrence never
	// exponentiates a positive argument, so the output must stay finite.
	rng := rand.New(rand.NewSource(41))
	const n, d = 16, 8
	adj := sparse.Random(rng, n, n, 4)
	x := randTensor(rng, n, d)
	y := randTensor(rng, n, d)
	for i, v := range x.Data() {
		x.Data()[i] = v * 200 // dots on the order of ±1e5
	}
	for i, v := range y.Data() {
		y.Data()[i] = v * 200
	}
	k, _, _ := buildFused(t, adj, x, y, gatCfg, Options{Target: CPU, CheckNumerics: true})
	out := tensor.New(n, d)
	if _, err := k.Run(out); err != nil {
		t.Fatal(err)
	}
	want := refFusedAttn(adj, x, y, gatCfg)
	if !out.AllClose(want, 1e-2) {
		t.Fatalf("max diff %v", out.MaxAbsDiff(want))
	}
}

func TestFusedAttentionEmptyGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const n, d = 8, 4
	adj := &sparse.CSR{NumRows: n, NumCols: n, RowPtr: make([]int32, n+1)}
	x := randTensor(rng, n, d)
	k, _, _ := buildFused(t, adj, x, x, gatCfg, Options{Target: CPU})
	out := tensor.New(n, d)
	out.FillUniform(rng, -1, 1) // must be overwritten with zeros
	if _, err := k.Run(out); err != nil {
		t.Fatal(err)
	}
	for i, v := range out.Data() {
		if v != 0 {
			t.Fatalf("out[%d] = %v on empty graph", i, v)
		}
	}
}

func TestFusedAttentionGPUMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	const n, d = 40, 16
	adj := graphWithIsolated(t, rng, n, 5)
	x := randTensor(rng, n, d)
	y := randTensor(rng, n, d)
	want := refFusedAttn(adj, x, y, gatCfg)
	dev := cudasim.NewDevice(cudasim.Config{NumSMs: 4})
	k, _, _ := buildFused(t, adj, x, y, gatCfg, Options{Target: GPU, Device: dev})
	out := tensor.New(n, d)
	stats, err := k.Run(out)
	if err != nil {
		t.Fatal(err)
	}
	if !out.AllClose(want, 1e-4) {
		t.Fatalf("max diff %v", out.MaxAbsDiff(want))
	}
	if stats.SimCycles == 0 {
		t.Fatal("GPU run should charge simulated cycles")
	}
}

func TestFusedAttentionBwdMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	const n, d = 40, 12
	adj := graphWithIsolated(t, rng, n, 5)
	adjT := adj.Transpose()
	x := randTensor(rng, n, d)
	y := randTensor(rng, n, d)
	dout := randTensor(rng, n, d)
	wantDX, wantDY := refFusedAttnBwd(adj, x, y, dout, gatCfg)

	dev := cudasim.NewDevice(cudasim.Config{NumSMs: 4})
	configs := []struct {
		name string
		opts Options
	}{
		{"engine-1t", Options{Target: CPU}},
		{"engine-4t", Options{Target: CPU, NumThreads: 4}},
		{"legacy", Options{Target: CPU, LegacySched: true, NumThreads: 2}},
		{"gpu", Options{Target: GPU, Device: dev}},
	}
	for _, cfg := range configs {
		// The forward fills alpha/deriv; the backward consumes them.
		fwd, alpha, deriv := buildFused(t, adj, x, y, gatCfg, cfg.opts)
		if _, err := fwd.Run(tensor.New(n, d)); err != nil {
			t.Fatal(err)
		}
		bwd, err := BuildFusedAttentionBwd(adj, adjT, x, y, alpha, deriv, dout, cfg.opts)
		if err != nil {
			t.Fatal(err)
		}
		rows, cols := bwd.OutShape()
		if rows != 2*n || cols != d {
			t.Fatalf("%s: OutShape = %d,%d", cfg.name, rows, cols)
		}
		grad := tensor.New(rows, cols)
		if _, err := bwd.Run(grad); err != nil {
			t.Fatal(err)
		}
		for u := 0; u < n; u++ {
			for f := 0; f < d; f++ {
				if diff := math.Abs(float64(grad.At(u, f) - wantDX.At(u, f))); diff > 1e-3 {
					t.Fatalf("%s: dX[%d,%d] = %v, want %v", cfg.name, u, f, grad.At(u, f), wantDX.At(u, f))
				}
				if diff := math.Abs(float64(grad.At(n+u, f) - wantDY.At(u, f))); diff > 1e-3 {
					t.Fatalf("%s: dY[%d,%d] = %v, want %v", cfg.name, u, f, grad.At(n+u, f), wantDY.At(u, f))
				}
			}
		}
	}
}

func TestFusedAttentionBwdFiniteDifference(t *testing.T) {
	// Central differences through the fused forward: L = Σ dout ⊙ out.
	rng := rand.New(rand.NewSource(45))
	const n, d = 10, 4
	adj := sparse.Random(rng, n, n, 3)
	adjT := adj.Transpose()
	x := randTensor(rng, n, d)
	y := randTensor(rng, n, d)
	dout := randTensor(rng, n, d)

	fwd, alpha, deriv := buildFused(t, adj, x, y, gatCfg, Options{Target: CPU})
	if _, err := fwd.Run(tensor.New(n, d)); err != nil {
		t.Fatal(err)
	}
	bwd, err := BuildFusedAttentionBwd(adj, adjT, x, y, alpha, deriv, dout, Options{Target: CPU})
	if err != nil {
		t.Fatal(err)
	}
	grad := tensor.New(2*n, d)
	if _, err := bwd.Run(grad); err != nil {
		t.Fatal(err)
	}

	loss := func() float64 {
		out := refFusedAttn(adj, x, y, gatCfg)
		var l float64
		for i, v := range out.Data() {
			l += float64(dout.Data()[i]) * float64(v)
		}
		return l
	}
	const eps = 1e-3
	check := func(param *tensor.Tensor, base int) {
		for _, idx := range []int{0, 7, param.Len() - 1} {
			orig := param.Data()[idx]
			param.Data()[idx] = orig + eps
			lp := loss()
			param.Data()[idx] = orig - eps
			lm := loss()
			param.Data()[idx] = orig
			fd := (lp - lm) / (2 * eps)
			got := float64(grad.Data()[base*d+idx])
			if math.Abs(fd-got) > 1e-2*math.Max(1, math.Abs(fd)) {
				t.Fatalf("param base %d idx %d: analytic %v, finite-diff %v", base, idx, got, fd)
			}
		}
	}
	check(x, 0)
	check(y, n)
}

func TestFusedAttentionValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	const n, d = 10, 4
	adj := sparse.Random(rng, n, n, 2)
	adjT := adj.Transpose()
	x := randTensor(rng, n, d)
	m := adj.NNZ()
	alpha, deriv := tensor.New(m, 1), tensor.New(m, 1)
	dout := randTensor(rng, n, d)

	if _, err := BuildFusedAttention(adj, randTensor(rng, n+1, d), x, alpha, deriv, gatCfg, Options{}); err == nil {
		t.Fatal("wrong x rows should be rejected")
	}
	if _, err := BuildFusedAttention(adj, x, randTensor(rng, n, d+1), alpha, deriv, gatCfg, Options{}); err == nil {
		t.Fatal("mismatched y width should be rejected")
	}
	if _, err := BuildFusedAttention(adj, x, x, tensor.New(m-1, 1), deriv, gatCfg, Options{}); err == nil {
		t.Fatal("undersized alpha buffer should be rejected")
	}
	if _, err := BuildFusedAttentionBwd(adj, adj, x, x, alpha, deriv, dout, Options{}); err == nil && adj.NumRows != adj.NumCols {
		t.Fatal("non-transpose should be rejected")
	}
	if _, err := BuildFusedAttentionBwd(adj, adjT, x, x, alpha, deriv, randTensor(rng, n+1, d), Options{}); err == nil {
		t.Fatal("wrong dout shape should be rejected")
	}

	k, _, _ := buildFused(t, adj, x, x, gatCfg, Options{})
	if _, err := k.Run(tensor.New(n, d+1)); err == nil {
		t.Fatal("wrong output shape should be rejected")
	}
	if k.Pattern() != "fusedattn" {
		t.Fatalf("Pattern = %q", k.Pattern())
	}
	if k.Describe() == "" {
		t.Fatal("Describe should not be empty")
	}
}

func TestFusedAttentionWorkerPanicIsKernelError(t *testing.T) {
	defer faultinject.Arm(faultinject.SiteFusedAttnCPUWorker,
		&faultinject.Fault{Kind: faultinject.Panic, Value: "bad edge"})()
	rng := rand.New(rand.NewSource(47))
	const n, d = 24, 8
	adj := sparse.Random(rng, n, n, 3)
	x := randTensor(rng, n, d)
	k, _, _ := buildFused(t, adj, x, x, gatCfg, Options{Target: CPU, NumThreads: 4})
	_, err := k.Run(tensor.New(n, d))
	var ke *KernelError
	if !errors.As(err, &ke) {
		t.Fatalf("want KernelError, got %v", err)
	}
	if ke.Kernel != "fusedattn" {
		t.Fatalf("KernelError.Kernel = %q", ke.Kernel)
	}
}

func TestFusedAttentionNumericCheckCatchesCorruption(t *testing.T) {
	defer faultinject.Arm(faultinject.SiteFusedAttnCPUOutput,
		&faultinject.Fault{Kind: faultinject.NaN})()
	rng := rand.New(rand.NewSource(48))
	const n, d = 24, 8
	adj := sparse.Random(rng, n, n, 3)
	x := randTensor(rng, n, d)
	k, _, _ := buildFused(t, adj, x, x, gatCfg, Options{Target: CPU, CheckNumerics: true})
	if _, err := k.Run(tensor.New(n, d)); err == nil {
		t.Fatal("NaN-poisoned output should fail the numeric check")
	}
}

func TestExpf32MatchesFloat64Exp(t *testing.T) {
	// Sweep the finite range; Expf32 must stay within a few ULPs of the
	// correctly-rounded float32 exponential.
	worst := 0
	for x := float32(-87); x < 88; x += 0.0037 {
		want := float32(math.Exp(float64(x)))
		got := Expf32(x)
		w, g := int64(math.Float32bits(want)), int64(math.Float32bits(got))
		ulps := int(math.Abs(float64(w - g)))
		if ulps > worst {
			worst = ulps
		}
	}
	if worst > 4 {
		t.Fatalf("Expf32 worst-case error %d ULPs, want <= 4", worst)
	}
	if Expf32(0) != 1 {
		t.Fatalf("Expf32(0) = %v", Expf32(0))
	}
	if !math.IsInf(float64(Expf32(200)), 1) {
		t.Fatalf("Expf32(200) = %v, want +Inf", Expf32(200))
	}
	if Expf32(-200) != 0 {
		t.Fatalf("Expf32(-200) = %v, want 0", Expf32(-200))
	}
	if Expf32(negInf32) != 0 {
		t.Fatalf("Expf32(-Inf) = %v, want 0", Expf32(negInf32))
	}
	// Batch form agrees with the scalar form element-wise.
	vals := []float32{-80, -1.5, -1e-4, 0, 0.3, 5, 42, 87}
	batch := append([]float32(nil), vals...)
	ExpSliceF32(batch)
	for i, v := range vals {
		if batch[i] != Expf32(v) {
			t.Fatalf("ExpSliceF32[%d] = %v, Expf32 = %v", i, batch[i], Expf32(v))
		}
	}
}
