package core

import (
	"context"
	"fmt"
	"sync"
	"time"

	"featgraph/internal/admission"
	"featgraph/internal/codegen"
	"featgraph/internal/expr"
	"featgraph/internal/faultinject"
	"featgraph/internal/partition"
	"featgraph/internal/schedule"
	"featgraph/internal/sparse"
	"featgraph/internal/telemetry"
	"featgraph/internal/tensor"
)

// SpMMKernel is a built generalized-SpMM kernel: the paper's
// featgraph.spmm(A, msgfunc, aggregation, target, fds). Building performs
// the "compilation": FDS validation, UDF lowering, pattern recognition,
// graph partitioning, and scheduling-parameter resolution. Run executes it.
//
// A kernel may be Run concurrently only with distinct output tensors;
// concurrent executions draw separate run states from the engine's pool.
type SpMMKernel struct {
	adj    *sparse.CSR
	agg    AggOp
	opts   Options
	outLen int

	// Sharded execution (see sharded.go): dstBase maps the shard's local
	// destination rows onto the global graph for Dst-indexed inputs, and
	// partial suppresses the output prefill and aggregate finalization —
	// the sharded executor owns both, because a shard boundary may split a
	// row whose aggregate this kernel only partially computes.
	dstBase int
	partial bool

	compiled *codegen.CompiledUDF
	match    codegen.Match

	tiles []partition.Range

	// Scratch sizing, hoisted to build time so runs allocate nothing.
	maxTile int // widest feature tile
	tmpLen  int // combined-feature length for the MLP fast path

	// CPU state, built for both targets: it is the kernel's own schedule on
	// CPU and the graceful-degradation retry path on GPU.
	parts []*sparse.CSR // 1D column partitions (length 1 when disabled)

	// Engine state (see engine.go, chunks.go): per-partition edge-balanced
	// row chunks, uniform finalization chunks, and the run-state freelist.
	chunks    [][]partition.Range
	finChunks []partition.Range
	states    chan *spmmRunState

	// GPU state (see spmm_gpu.go). nil for a GPU-target kernel whose device
	// build failed and degraded to the CPU path.
	gpu         *spmmGPU
	gpuBuildErr string // the device build failure behind gpu == nil

	// breaker quarantines the device path after consecutive run failures
	// (see admission.Breaker); nil for CPU kernels and when disabled.
	breaker *admission.Breaker
	// memEstimate is the run's working-set estimate in bytes (output
	// surface plus per-slot scratch), computed from plan shapes at build
	// time for admission memory budgeting.
	memEstimate int64

	// LastStats storage (see kernel.go).
	lastMu sync.Mutex
	last   RunStats
}

// BuildSpMM builds a generalized SpMM kernel over adjacency matrix adj.
// udf is the per-edge message function with inputs bound positionally;
// agg is the aggregation operator; fds may be nil for the unscheduled
// degradation the paper describes in §III-B.
func BuildSpMM(adj *sparse.CSR, udf *expr.UDF, inputs []*tensor.Tensor, agg AggOp, fds *schedule.FDS, opts Options) (*SpMMKernel, error) {
	return buildSpMM(adj, udf, inputs, agg, fds, opts, nil)
}

// buildSpMM is BuildSpMM plus the sharded-execution hook: a non-nil sh
// builds a partial kernel over one shard of a larger graph (CPU only),
// validating inputs against the global dimensions.
func buildSpMM(adj *sparse.CSR, udf *expr.UDF, inputs []*tensor.Tensor, agg AggOp, fds *schedule.FDS, opts Options, sh *shardSpec) (*SpMMKernel, error) {
	tracing := telemetry.TraceActive()
	var buildStart, stepStart time.Time
	if tracing {
		buildStart = time.Now()
	}
	if err := adj.Validate(); err != nil {
		return nil, fmt.Errorf("core: invalid adjacency: %w", err)
	}
	if len(udf.OutAxes) == 0 {
		return nil, fmt.Errorf("core: UDF must have at least one output axis")
	}
	if err := fds.Validate(udf); err != nil {
		return nil, err
	}
	bindRows, bindCols, bindNNZ := adj.NumRows, adj.NumCols, int64(adj.NNZ())
	if sh != nil {
		if opts.Target != CPU {
			return nil, fmt.Errorf("core: sharded kernels run on CPU only")
		}
		bindRows, bindCols, bindNNZ = sh.globalRows, sh.globalCols, sh.globalNNZ
	}
	if err := validateBindings(bindRows, bindCols, bindNNZ, udf, inputs); err != nil {
		return nil, err
	}
	if tracing {
		stepStart = time.Now()
	}
	compiled, err := codegen.Compile(udf, inputs)
	if err != nil {
		return nil, err
	}
	if tracing {
		telemetry.RecordSpan("spmm.lower", 0, stepStart, time.Since(stepStart), "out_len", int64(compiled.OutLen()), "", 0, 1)
	}
	k := &SpMMKernel{
		adj:      adj,
		agg:      agg,
		opts:     opts,
		outLen:   compiled.OutLen(),
		compiled: compiled,
		match:    codegen.Recognize(udf, inputs),
	}
	if sh != nil {
		k.dstBase, k.partial = sh.dstBase, true
	}
	k.tiles = partition.FeatureTiles(k.outLen, fds.SplitFactor(udf.OutAxes[0]))
	for _, t := range k.tiles {
		k.maxTile = max(k.maxTile, t.Len())
	}
	if k.match.Pattern == codegen.MLPSrcDst {
		k.tmpLen = k.match.W.Dim(0)
	}

	if opts.Target != CPU && opts.Target != GPU {
		return nil, fmt.Errorf("core: unknown target %d", opts.Target)
	}
	if tracing {
		stepStart = time.Now()
	}
	if opts.GraphPartitions > 1 {
		k.parts = partition.OneD(adj, opts.GraphPartitions).Parts
	} else {
		k.parts = []*sparse.CSR{adj}
	}

	// Engine schedule: edge-balanced row chunks per partition (computed
	// once, from the CSR prefix sums), uniform chunks for finalization, and
	// a freelist so steady-state runs are allocation-free.
	threads := max(opts.NumThreads, 1)
	k.chunks = make([][]partition.Range, len(k.parts))
	for i, p := range k.parts {
		k.chunks[i] = edgeBalancedChunks(p, numChunksFor(threads, p.NumRows, p.NNZ()))
	}
	k.finChunks = uniformChunks(adj.NumRows, numChunksFor(threads, adj.NumRows, adj.NumRows))
	k.states = make(chan *spmmRunState, runStatePoolCap)
	if tracing {
		telemetry.RecordSpan("spmm.partition", 0, stepStart, time.Since(stepStart), "parts", int64(len(k.parts)), "tiles", int64(len(k.tiles)), 2)
	}

	if opts.Target == GPU {
		k.gpu, err = buildSpMMGPU(k, udf, fds)
		if err != nil {
			if opts.NoFallback {
				return nil, err
			}
			// Graceful degradation: an unsupported device schedule (e.g. a
			// feature tile exceeding shared memory) falls back to the CPU
			// path; Run records the fallback in its stats.
			k.gpu = nil
			k.gpuBuildErr = err.Error()
		}
		if k.gpu != nil && opts.BreakerThreshold >= 0 {
			k.breaker = admission.NewBreaker(opts.BreakerThreshold, opts.BreakerCooldown, spmmMetrics.breakerHook())
		}
	}

	// Admission memory estimate: the output surface plus one run state's
	// per-slot scratch, in float32 bytes.
	k.memEstimate = 4 * (int64(adj.NumRows)*int64(k.outLen) +
		int64(scratchSlots(opts.NumThreads))*int64(k.maxTile+k.tmpLen))

	// Pre-create one run state (and GPU launch state) so scratch is
	// allocated at build time and the first Run is already allocation-free;
	// this also starts the shared worker pool before any run executes.
	k.states <- k.newRunState()
	if k.gpu != nil {
		k.gpu.states <- k.newGPULaunch()
	}
	if tracing {
		telemetry.RecordSpan("spmm.build", 0, buildStart, time.Since(buildStart), "rows", int64(adj.NumRows), "nnz", int64(adj.NNZ()), 2)
	}
	return k, nil
}

// OutShape returns the required output tensor shape.
func (k *SpMMKernel) OutShape() (rows, cols int) { return k.adj.NumRows, k.outLen }

// Pattern returns the recognized UDF pattern ("generic" when the compiled
// path is used).
func (k *SpMMKernel) Pattern() string { return k.match.Pattern.String() }

// Run executes the kernel into out, which must be a [NumRows, outLen]
// tensor (or any shape with matching leading dimension and total size).
func (k *SpMMKernel) Run(out *tensor.Tensor) (RunStats, error) {
	return k.RunCtx(context.Background(), out)
}

// RunCtx executes the kernel into out under ctx and the kernel's serving
// policy. Every run first passes the admission governor
// (Options.Admission, else the process default): it may queue, be shed
// with an error matching admission.ErrOverloaded, or be rejected because
// its deadline (Options.Deadline or ctx's) cannot be met. Cancelling the
// context stops the worker pool promptly and returns ctx.Err(); the
// contents of out are then undefined. A panic inside a worker goroutine (a
// UDF evaluation fault, a shape mismatch, an injected fault) is recovered
// and returned as a *KernelError instead of crashing the process. A
// GPU-target kernel whose device run fails retries once on the CPU path
// and records the fallback in the returned stats, unless
// Options.NoFallback is set; consecutive device failures open the kernel's
// circuit breaker, which routes runs straight to CPU until a half-open
// probe succeeds. Under a watchdog-enabled governor, a run whose workers
// stop making progress is cancelled with an *admission.StallError. When
// Options.CheckNumerics is set, a successful run additionally scans out
// and fails with a *NumericError on the first NaN/±Inf. Retryable
// failures (stall, panic, numeric) are retried up to Options.Retries
// times with jittered backoff.
func (k *SpMMKernel) RunCtx(ctx context.Context, out *tensor.Tensor) (RunStats, error) {
	if out.Dim(0) != k.adj.NumRows || out.Len() != k.adj.NumRows*k.outLen {
		return RunStats{}, fmt.Errorf("core: SpMM output shape %v, want [%d, %d]", out.Shape(), k.adj.NumRows, k.outLen)
	}
	if err := ctx.Err(); err != nil {
		return RunStats{}, err
	}
	gov := admission.Resolve(k.opts.Admission)
	if k.opts.Deadline > 0 {
		dctx, cancel := context.WithTimeout(ctx, k.opts.Deadline)
		defer cancel()
		ctx = dctx
	}
	tk, err := gov.Admit(ctx, k.memEstimate)
	if err != nil {
		return RunStats{}, err
	}
	stats, err := k.runAttempts(ctx, out, tk.Queued())
	gov.Release(tk)
	return stats, err
}

// runAttempts drives runAttempt under the kernel's retry policy.
func (k *SpMMKernel) runAttempts(ctx context.Context, out *tensor.Tensor, queued time.Duration) (RunStats, error) {
	for attempt := 0; ; attempt++ {
		stats, err := k.runAttempt(ctx, out, queued, attempt)
		if err == nil || attempt >= k.opts.Retries || !retryable(err) || ctx.Err() != nil {
			return stats, err
		}
		admission.RecordRetry()
		if !admission.SleepBackoff(ctx, attempt) {
			return stats, err
		}
	}
}

// runAttempt is one execution attempt: the GPU path behind the circuit
// breaker with CPU fallback, or the CPU engine, plus numeric checking and
// stats publication.
func (k *SpMMKernel) runAttempt(ctx context.Context, out *tensor.Tensor, queued time.Duration, attempt int) (RunStats, error) {
	metricsOn := k.opts.Metrics || telemetry.Enabled()
	tracing := telemetry.TraceActive()
	start := time.Now()
	stats := RunStats{Queued: queued, Retries: attempt}
	if k.opts.Target == GPU && k.gpu != nil && k.breaker.Allow() {
		gstats, err := k.runGPU(ctx, out)
		if err == nil {
			k.breaker.RecordSuccess()
			gstats.Queued, gstats.Retries = queued, attempt
			stats = gstats
		} else {
			if ctxDone(ctx, err) {
				// Cancellation is not a device verdict; release any
				// half-open probe without recording one.
				k.breaker.RecordCancel()
				return RunStats{}, err
			}
			k.breaker.RecordFailure()
			if k.opts.NoFallback {
				return RunStats{}, err
			}
			// Graceful degradation: one retry on the CPU path.
			stats = RunStats{Queued: queued, Retries: attempt}
			if cpuErr := k.runCPU(ctx, out, &stats); cpuErr != nil {
				return RunStats{}, fmt.Errorf("core: gpu run failed (%v); cpu fallback failed: %w", err, cpuErr)
			}
			stats.Fallback = true
			stats.FallbackReason = err.Error()
			if metricsOn {
				spmmMetrics.recordFallback(false)
			}
			if tracing {
				telemetry.RecordInstant("spmm.fallback", 0, "run_stage", 1, 1)
			}
		}
	} else {
		if err := k.runCPU(ctx, out, &stats); err != nil {
			return RunStats{}, err
		}
		switch {
		case k.opts.Target != GPU:
		case k.gpu == nil:
			// The device build already degraded to the CPU path.
			stats.Fallback = true
			stats.FallbackReason = k.gpuBuildErr
			if metricsOn {
				spmmMetrics.recordFallback(true)
			}
			if tracing {
				telemetry.RecordInstant("spmm.fallback", 0, "build_stage", 1, 1)
			}
		default:
			// The circuit breaker is open: routed straight to CPU without
			// paying for a doomed device attempt.
			stats.Fallback = true
			stats.FallbackReason = "gpu circuit breaker open"
			if metricsOn {
				spmmMetrics.recordBreakerReroute()
			}
			if tracing {
				telemetry.RecordInstant("spmm.fallback", 0, "breaker_open", 1, 1)
			}
		}
	}
	if k.breaker != nil {
		stats.BreakerState = k.breaker.State().String()
	}
	if k.opts.CheckNumerics {
		if err := checkNumerics("spmm", out); err != nil {
			return stats, err
		}
	}
	if metricsOn {
		mSpMMRows.Add(uint64(k.adj.NumRows) * uint64(len(k.tiles)))
	}
	finishRun("spmm.run", spmmMetrics, k.opts.Target, &k.lastMu, &k.last, start, &stats, metricsOn, tracing)
	return stats, nil
}

// runCPU executes the tiled, partitioned, multi-threaded CPU schedule:
// feature tiles outermost (each tile re-traverses the topology, the
// trade-off of Figure 6), graph partitions next (all threads cooperate on
// one partition at a time, §IV-A), rows across workers innermost. The
// persistent engine (engine.go) dispatches rows as edge-balanced chunks on
// the shared worker pool with zero per-run allocation; Options.LegacySched
// selects the pre-engine per-run-goroutine scheduler instead.
func (k *SpMMKernel) runCPU(ctx context.Context, out *tensor.Tensor, stats *RunStats) error {
	if k.opts.LegacySched {
		err := k.runCPULegacy(ctx, out)
		if err == nil {
			// The legacy scheduler has no chunk accounting; report the
			// nominal traversal count (every tile revisits every edge).
			stats.EdgesProcessed = uint64(k.adj.NNZ()) * uint64(len(k.tiles))
		}
		return err
	}
	return k.runCPUEngine(ctx, out, stats)
}

// runCPULegacy is the pre-engine scheduler: fresh goroutines per phase over
// a uniform contiguous row split, with scratch allocated per run. Kept as
// the measured ablation baseline for the engine.
func (k *SpMMKernel) runCPULegacy(ctx context.Context, out *tensor.Tensor) error {
	rc := newRunControl(ctx)
	threads := max(k.opts.NumThreads, 1)
	if !k.partial {
		out.Fill(k.agg.identity())
	}

	// Per-worker scratch: env and message buffer for the generic path,
	// plus a combined-feature buffer for the MLP fast path.
	scratch := make([]*spmmScratch, threads)
	for w := range scratch {
		scratch[w] = &spmmScratch{
			env: k.compiled.NewEnv(),
			msg: make([]float32, k.maxTile),
			tmp: make([]float32, k.tmpLen),
		}
	}

	ostride := out.RowStride()
	odata := out.Data()
	for ti, tile := range k.tiles {
		for pi, part := range k.parts {
			if rc.stop() {
				return rc.verdict()
			}
			site := workerSite{kernel: "spmm", target: CPU, tile: ti, part: pi}
			parallelFor(rc, site, k.adj.NumRows, threads, func(w, rlo, rhi int) {
				faultinject.Hit(faultinject.SiteSpMMCPUWorker, rc.done, rc.quit)
				for lo := rlo; lo < rhi; lo += cancelChunk {
					if rc.stop() {
						return
					}
					k.cpuRows(out, part, tile, scratch[w], lo, min(lo+cancelChunk, rhi))
				}
				faultinject.CorruptFloats(faultinject.SiteSpMMCPUOutput, odata[rlo*ostride:rhi*ostride])
			})
		}
	}
	if !rc.stop() && !k.partial {
		site := workerSite{kernel: "spmm", target: CPU, tile: -1, part: -1}
		parallelFor(rc, site, k.adj.NumRows, threads, func(_, rlo, rhi int) {
			finalizeAgg(k.agg, out, k.adj, rlo, rhi)
		})
	}
	return rc.verdict()
}

// spmmScratch is per-worker evaluation state.
type spmmScratch struct {
	env *codegen.Env
	msg []float32 // message buffer (one feature tile)
	tmp []float32 // x_src + x_dst buffer for the MLP fast path
}

// cpuRows processes rows [rlo, rhi) of one partition for one feature tile.
func (k *SpMMKernel) cpuRows(out *tensor.Tensor, part *sparse.CSR, tile partition.Range, sc *spmmScratch, rlo, rhi int) {
	lo, hi := tile.Lo, tile.Hi
	tl := hi - lo
	ostride := out.RowStride()
	odata := out.Data()

	switch {
	case k.match.Pattern == codegen.CopySrc && (k.agg == AggSum || k.agg == AggMean):
		// Mean accumulates like sum; finalizeAgg divides by the degree.
		x := k.match.X
		xd, xs := x.Data(), x.RowStride()
		for r := rlo; r < rhi; r++ {
			orow := odata[r*ostride+lo : r*ostride+hi]
			for p := part.RowPtr[r]; p < part.RowPtr[r+1]; p++ {
				c := int(part.ColIdx[p])
				xrow := xd[c*xs+lo : c*xs+hi]
				for f := range orow {
					orow[f] += xrow[f]
				}
			}
		}

	case k.match.Pattern == codegen.CopySrc && (k.agg == AggMax || k.agg == AggMin):
		x := k.match.X
		xd, xs := x.Data(), x.RowStride()
		isMax := k.agg == AggMax
		for r := rlo; r < rhi; r++ {
			orow := odata[r*ostride+lo : r*ostride+hi]
			for p := part.RowPtr[r]; p < part.RowPtr[r+1]; p++ {
				c := int(part.ColIdx[p])
				xrow := xd[c*xs+lo : c*xs+hi]
				if isMax {
					for f := range orow {
						if xrow[f] > orow[f] {
							orow[f] = xrow[f]
						}
					}
				} else {
					for f := range orow {
						if xrow[f] < orow[f] {
							orow[f] = xrow[f]
						}
					}
				}
			}
		}

	case k.match.Pattern == codegen.SrcMulEdgeScalar && (k.agg == AggSum || k.agg == AggMean):
		x, e := k.match.X, k.match.E
		xd, xs := x.Data(), x.RowStride()
		ed := e.Data()
		for r := rlo; r < rhi; r++ {
			orow := odata[r*ostride+lo : r*ostride+hi]
			for p := part.RowPtr[r]; p < part.RowPtr[r+1]; p++ {
				c := int(part.ColIdx[p])
				wgt := ed[part.EID[p]]
				xrow := xd[c*xs+lo : c*xs+hi]
				for f := range orow {
					orow[f] += wgt * xrow[f]
				}
			}
		}

	case k.match.Pattern == codegen.CopyEdge && (k.agg == AggSum || k.agg == AggMean):
		e := k.match.E
		ed, es := e.Data(), e.RowStride()
		for r := rlo; r < rhi; r++ {
			orow := odata[r*ostride+lo : r*ostride+hi]
			for p := part.RowPtr[r]; p < part.RowPtr[r+1]; p++ {
				eid := int(part.EID[p])
				erow := ed[eid*es+lo : eid*es+hi]
				for f := range orow {
					orow[f] += erow[f]
				}
			}
		}

	case k.match.Pattern == codegen.MLPSrcDst:
		// MLP aggregation with the scheduled loop order: the combined
		// feature x_src+x_dst is computed once per edge, then the matrix
		// product streams rows of W (contiguous) instead of columns —
		// the optimization the blackbox baselines cannot apply.
		x, w := k.match.X, k.match.W
		xd, xs := x.Data(), x.RowStride()
		wd, ws := w.Data(), w.RowStride()
		d1 := w.Dim(0)
		tmp := sc.tmp[:d1]
		msg := sc.msg[:tl]
		for r := rlo; r < rhi; r++ {
			orow := odata[r*ostride+lo : r*ostride+hi]
			// Dst features live at the global row; out at the local one
			// (identical for non-sharded kernels, where dstBase is 0).
			xv := xd[(r+k.dstBase)*xs : (r+k.dstBase)*xs+d1]
			for p := part.RowPtr[r]; p < part.RowPtr[r+1]; p++ {
				c := int(part.ColIdx[p])
				xu := xd[c*xs : c*xs+d1]
				for kk := range tmp {
					tmp[kk] = xu[kk] + xv[kk]
				}
				clear(msg)
				for kk, a := range tmp {
					if a == 0 {
						continue
					}
					wrow := wd[kk*ws+lo : kk*ws+hi]
					for f := range msg {
						msg[f] += a * wrow[f]
					}
				}
				if k.match.Relu {
					for f := range msg {
						if msg[f] < 0 {
							msg[f] = 0
						}
					}
				}
				aggInto(k.agg, orow, msg)
			}
		}

	default:
		// Generic path: evaluate the compiled UDF per edge over the tile
		// sub-range, then fold with the aggregation operator.
		msg := sc.msg[:tl]
		for r := rlo; r < rhi; r++ {
			orow := odata[r*ostride+lo : r*ostride+hi]
			for p := part.RowPtr[r]; p < part.RowPtr[r+1]; p++ {
				k.compiled.Eval(sc.env, part.ColIdx[p], int32(r+k.dstBase), part.EID[p], msg, lo, hi)
				aggInto(k.agg, orow, msg)
			}
		}
	}
}
