package core_test

// Native fuzz targets for the kernel correctness oracle. The fuzzing input
// is a single int64 seed; internal/oracle derives the whole case (graph,
// UDF, inputs, aggregation, schedule) from it deterministically, so every
// crasher the fuzzer saves is a complete reproducer. The seeded-corpus
// regression floor lives in internal/oracle; these targets let
// `go test -fuzz` explore seeds beyond it.
//
// This file is an external test package so it can import internal/oracle
// (which itself imports core) without a cycle.

import (
	"testing"

	"featgraph/internal/cudasim"
	"featgraph/internal/oracle"
)

func FuzzSpMMOracle(f *testing.F) {
	for seed := int64(1); seed <= 16; seed++ {
		f.Add(seed)
	}
	dev := cudasim.NewDevice(cudasim.Config{NumSMs: 2})
	f.Fuzz(func(t *testing.T, seed int64) {
		c := oracle.GenSpMM(seed)
		if _, err := oracle.Check(c, dev); err != nil {
			t.Fatal(err)
		}
		if err := oracle.CheckPermutation(c, oracle.DefaultTol()); err != nil {
			t.Fatal(err)
		}
	})
}

func FuzzSDDMMOracle(f *testing.F) {
	for seed := int64(1); seed <= 16; seed++ {
		f.Add(seed)
	}
	dev := cudasim.NewDevice(cudasim.Config{NumSMs: 2})
	f.Fuzz(func(t *testing.T, seed int64) {
		c := oracle.GenSDDMM(seed)
		if _, err := oracle.Check(c, dev); err != nil {
			t.Fatal(err)
		}
		if err := oracle.CheckPermutation(c, oracle.DefaultTol()); err != nil {
			t.Fatal(err)
		}
	})
}
