package core

import (
	"context"
	"math/rand"
	"sync/atomic"
	"testing"

	"featgraph/internal/expr"
	"featgraph/internal/partition"
	"featgraph/internal/sparse"
	"featgraph/internal/tensor"
)

// memShardSource serves an in-memory CSR through the ShardSource interface
// so the sharded executors can be tested against the whole-graph kernels
// without touching disk. With fresh=true every Pin extracts a new CSR
// (simulating a residency cache that evicted in between), which is how the
// planner-invalidation tests force rebuilds.
type memShardSource struct {
	a      *sparse.CSR
	shards []partition.EdgeShard
	cache  []*sparse.CSR
	fresh  bool
	pins   atomic.Int64
}

func newMemShardSource(a *sparse.CSR, targetEdges int) *memShardSource {
	shards := partition.EdgeShards(a, targetEdges)
	return &memShardSource{a: a, shards: shards, cache: make([]*sparse.CSR, len(shards))}
}

func (s *memShardSource) Dims() (int, int, int64) {
	return s.a.NumRows, s.a.NumCols, int64(s.a.NNZ())
}
func (s *memShardSource) NumShards() int { return len(s.shards) }
func (s *memShardSource) ShardRows(i int) (int, int) {
	return s.shards[i].RowLo, s.shards[i].RowHi
}
func (s *memShardSource) ShardNNZ(i int) int64 { return int64(s.shards[i].NNZ()) }
func (s *memShardSource) Degree(r int) int64 {
	return int64(s.a.RowPtr[r+1] - s.a.RowPtr[r])
}
func (s *memShardSource) Pin(ctx context.Context, i int) (*sparse.CSR, func(), error) {
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	s.pins.Add(1)
	if s.fresh {
		return partition.ExtractShard(s.a, s.shards[i]), func() {}, nil
	}
	if s.cache[i] == nil {
		s.cache[i] = partition.ExtractShard(s.a, s.shards[i])
	}
	return s.cache[i], func() {}, nil
}

// heavyRowGraph builds a graph whose row 1 holds most of the edges, so a
// small shard target is guaranteed to split it across shards — the case
// the partial-kernel algebra exists for. Row 0 stays isolated to exercise
// the zero-degree finalization across shard boundaries too.
func heavyRowGraph(t *testing.T, rng *rand.Rand, n, heavy int) *sparse.CSR {
	t.Helper()
	coo := &sparse.COO{NumRows: n, NumCols: n}
	seen := map[int32]bool{}
	for len(seen) < heavy {
		c := int32(rng.Intn(n))
		if seen[c] {
			continue
		}
		seen[c] = true
		coo.Row = append(coo.Row, 1)
		coo.Col = append(coo.Col, c)
	}
	for r := 2; r < n; r++ {
		coo.Row = append(coo.Row, int32(r))
		coo.Col = append(coo.Col, int32(rng.Intn(n)))
	}
	a, err := sparse.FromCOO(coo)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Val {
		a.Val[i] = rng.Float32()
	}
	return a
}

// The sharded SpMM executor must agree with the single-threaded reference
// (and therefore with the whole-graph kernel) for every aggregation, on a
// graph whose heavy row splits across shards and whose row 0 is isolated.
func TestShardedSpMMMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(50))
	const n, d = 40, 12
	a := heavyRowGraph(t, rng, n, 30)
	src := newMemShardSource(a, 8) // well below the heavy row's 30 edges
	if src.NumShards() < 4 {
		t.Fatalf("want >= 4 shards, got %d", src.NumShards())
	}
	x := randTensor(rng, n, d)
	e := randTensor(rng, a.NNZ(), 1)

	for _, tc := range []struct {
		name   string
		udf    *expr.UDF
		inputs []*tensor.Tensor
	}{
		{"copy-src", expr.CopySrc(n, d), []*tensor.Tensor{x}},
		{"src-mul-edge-scalar", expr.SrcMulEdgeScalar(n, a.NNZ(), d), []*tensor.Tensor{x, e}},
		// MLPMessage reads X[dst,k]: the partial kernels must offset local
		// rows by the shard's dstBase when indexing Dst-bound inputs.
		{"mlp-src-dst", expr.MLPMessage(n, d, 8), []*tensor.Tensor{x, randTensor(rng, d, 8)}},
	} {
		for _, agg := range []AggOp{AggSum, AggMax, AggMin, AggMean} {
			t.Run(tc.name+"/"+agg.String(), func(t *testing.T) {
				want, err := ReferenceSpMM(a, tc.udf, tc.inputs, agg)
				if err != nil {
					t.Fatal(err)
				}
				k, err := BuildShardedSpMM(src, tc.udf, tc.inputs, agg, nil, Options{Target: CPU}, nil)
				if err != nil {
					t.Fatal(err)
				}
				rows, cols := k.OutShape()
				out := tensor.New(rows, cols)
				if _, err := k.Run(out); err != nil {
					t.Fatal(err)
				}
				if !out.AllClose(want, 1e-4) {
					t.Fatalf("sharded SpMM diverges from reference, max diff %v", out.MaxAbsDiff(want))
				}

				// And from the whole-graph kernel, which shares schedules
				// but not the shard decomposition.
				whole := runSpMMConfig(t, a, tc.udf, tc.inputs, agg, nil, Options{Target: CPU})
				if !out.AllClose(whole, 1e-4) {
					t.Fatalf("sharded SpMM diverges from in-memory kernel, max diff %v", out.MaxAbsDiff(whole))
				}
			})
		}
	}
}

func TestShardedSDDMMMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	const n, d = 35, 10
	a := heavyRowGraph(t, rng, n, 24)
	src := newMemShardSource(a, 7)
	x := randTensor(rng, n, d)
	ev := randTensor(rng, a.NNZ(), d)

	for _, tc := range []struct {
		name   string
		udf    *expr.UDF
		inputs []*tensor.Tensor
	}{
		// DotAttention and AddSrcDst read Dst-bound features, exercising
		// the dstBase offset on the SDDMM side.
		{"dot-attention", expr.DotAttention(n, d), []*tensor.Tensor{x}},
		{"add-src-dst", expr.AddSrcDst(n, d), []*tensor.Tensor{x}},
		{"copy-edge", expr.CopyEdge(a.NNZ(), d), []*tensor.Tensor{ev}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			want, err := ReferenceSDDMM(a, tc.udf, tc.inputs)
			if err != nil {
				t.Fatal(err)
			}
			k, err := BuildShardedSDDMM(src, tc.udf, tc.inputs, nil, Options{Target: CPU}, nil)
			if err != nil {
				t.Fatal(err)
			}
			rows, cols := k.OutShape()
			if rows != a.NNZ() {
				t.Fatalf("OutShape rows = %d, want global NNZ %d", rows, a.NNZ())
			}
			out := tensor.New(rows, cols)
			if _, err := k.Run(out); err != nil {
				t.Fatal(err)
			}
			if !out.AllClose(want, 1e-4) {
				t.Fatalf("sharded SDDMM diverges from reference, max diff %v", out.MaxAbsDiff(want))
			}
		})
	}
}

// explicitShardSource serves hand-cut shards, including zero-edge ones in
// the middle of the graph — a shape EdgeShards never emits but the on-disk
// format permits, and the executors must skip cleanly.
type explicitShardSource struct {
	memShardSource
}

func TestShardedExecutorsSkipZeroEdgeShards(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	const n, d = 20, 6
	// Rows 8..12 have no edges; cut shards so the middle one is empty.
	coo := &sparse.COO{NumRows: n, NumCols: n}
	for r := 0; r < n; r++ {
		if r >= 8 && r < 12 {
			continue
		}
		seen := map[int32]bool{}
		for len(seen) < 3 {
			c := int32(rng.Intn(n))
			if seen[c] {
				continue
			}
			seen[c] = true
			coo.Row = append(coo.Row, int32(r))
			coo.Col = append(coo.Col, c)
		}
	}
	a, err := sparse.FromCOO(coo)
	if err != nil {
		t.Fatal(err)
	}
	edgeAt := func(r int) int { return int(a.RowPtr[r]) }
	src := &explicitShardSource{memShardSource{a: a, shards: []partition.EdgeShard{
		{RowLo: 0, RowHi: 8, EdgeLo: 0, EdgeHi: edgeAt(8)},
		{RowLo: 8, RowHi: 12, EdgeLo: edgeAt(8), EdgeHi: edgeAt(12)}, // zero edges
		{RowLo: 12, RowHi: n, EdgeLo: edgeAt(12), EdgeHi: a.NNZ()},
	}}}
	src.cache = make([]*sparse.CSR, len(src.shards))
	if src.ShardNNZ(1) != 0 {
		t.Fatal("middle shard should be empty")
	}
	x := randTensor(rng, n, d)
	udf := expr.CopySrc(n, d)

	want, err := ReferenceSpMM(a, udf, []*tensor.Tensor{x}, AggMean)
	if err != nil {
		t.Fatal(err)
	}
	k, err := BuildShardedSpMM(src, udf, []*tensor.Tensor{x}, AggMean, nil, Options{Target: CPU}, nil)
	if err != nil {
		t.Fatal(err)
	}
	out := tensor.New(n, d)
	if _, err := k.Run(out); err != nil {
		t.Fatal(err)
	}
	if !out.AllClose(want, 1e-4) {
		t.Fatalf("zero-edge shard broke SpMM, max diff %v", out.MaxAbsDiff(want))
	}

	wantE, err := ReferenceSDDMM(a, expr.AddSrcDst(n, d), []*tensor.Tensor{x})
	if err != nil {
		t.Fatal(err)
	}
	ks, err := BuildShardedSDDMM(src, expr.AddSrcDst(n, d), []*tensor.Tensor{x}, nil, Options{Target: CPU}, nil)
	if err != nil {
		t.Fatal(err)
	}
	outE := tensor.New(a.NNZ(), d)
	if _, err := ks.Run(outE); err != nil {
		t.Fatal(err)
	}
	if !outE.AllClose(wantE, 1e-4) {
		t.Fatalf("zero-edge shard broke SDDMM, max diff %v", outE.MaxAbsDiff(wantE))
	}
}

func TestShardedEmptyGraph(t *testing.T) {
	a := &sparse.CSR{NumRows: 6, NumCols: 6, RowPtr: make([]int32, 7)}
	src := newMemShardSource(a, 4)
	const d = 5
	x := tensor.New(6, d)
	x.Fill(3)
	k, err := BuildShardedSpMM(src, expr.CopySrc(6, d), []*tensor.Tensor{x}, AggMax, nil, Options{Target: CPU}, nil)
	if err != nil {
		t.Fatal(err)
	}
	out := tensor.New(6, d)
	out.Fill(99) // stale contents must be overwritten
	if _, err := k.Run(out); err != nil {
		t.Fatal(err)
	}
	for _, v := range out.Data() {
		if v != 0 {
			t.Fatalf("isolated vertices must aggregate to zero, got %v", v)
		}
	}
}

func TestShardedRejectsGPU(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	a := sparse.Random(rng, 10, 10, 2)
	src := newMemShardSource(a, 4)
	x := randTensor(rng, 10, 3)
	if _, err := BuildShardedSpMM(src, expr.CopySrc(10, 3), []*tensor.Tensor{x}, AggSum, nil, Options{Target: GPU}, nil); err == nil {
		t.Fatal("sharded SpMM must reject GPU target")
	}
	if _, err := BuildShardedSDDMM(src, expr.DotAttention(10, 3), []*tensor.Tensor{x}, nil, Options{Target: GPU}, nil); err == nil {
		t.Fatal("sharded SDDMM must reject GPU target")
	}
}

func TestShardedOutputShapeChecked(t *testing.T) {
	rng := rand.New(rand.NewSource(54))
	a := sparse.Random(rng, 12, 12, 3)
	src := newMemShardSource(a, 6)
	x := randTensor(rng, 12, 4)
	k, err := BuildShardedSpMM(src, expr.CopySrc(12, 4), []*tensor.Tensor{x}, AggSum, nil, Options{Target: CPU}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := k.Run(tensor.New(5, 4)); err == nil {
		t.Fatal("wrong output shape accepted")
	}
}

// countingPlanner wraps the default planner and counts kernel builds.
type countingPlanner struct {
	inner  mapPlanner
	builds atomic.Int64
}

func (p *countingPlanner) Plan(shard int, adj *sparse.CSR, build func() (Kernel, error)) (Kernel, error) {
	return p.inner.Plan(shard, adj, func() (Kernel, error) {
		p.builds.Add(1)
		return build()
	})
}

// Stable shard identity across runs must reuse plans; fresh extraction on
// every Pin (an evicting residency cache) must rebuild, because the cached
// kernel's schedule aliases the evicted arrays.
func TestShardPlannerReuseAndInvalidation(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	a := sparse.Random(rng, 30, 30, 4)
	x := randTensor(rng, 30, 6)
	udf := expr.CopySrc(30, 6)

	stable := newMemShardSource(a, 16)
	p := &countingPlanner{}
	k, err := BuildShardedSpMM(stable, udf, []*tensor.Tensor{x}, AggSum, nil, Options{Target: CPU}, p)
	if err != nil {
		t.Fatal(err)
	}
	out := tensor.New(30, 6)
	for run := 0; run < 3; run++ {
		if _, err := k.Run(out); err != nil {
			t.Fatal(err)
		}
	}
	if got := p.builds.Load(); got != int64(stable.NumShards()) {
		t.Fatalf("stable source: %d builds over 3 runs, want one per shard (%d)", got, stable.NumShards())
	}

	churning := newMemShardSource(a, 16)
	churning.fresh = true
	p2 := &countingPlanner{}
	k2, err := BuildShardedSpMM(churning, udf, []*tensor.Tensor{x}, AggSum, nil, Options{Target: CPU}, p2)
	if err != nil {
		t.Fatal(err)
	}
	for run := 0; run < 3; run++ {
		if _, err := k2.Run(out); err != nil {
			t.Fatal(err)
		}
	}
	if got := p2.builds.Load(); got != 3*int64(churning.NumShards()) {
		t.Fatalf("churning source: %d builds over 3 runs, want one per shard per run (%d)", got, 3*churning.NumShards())
	}
}

// The partial flag's contract: a whole-graph kernel built through the
// normal constructor still prefills and finalizes (dstBase 0, partial
// false), so the sharded hooks cannot have changed single-kernel behavior.
func TestWholeGraphKernelsUnaffectedByShardHooks(t *testing.T) {
	rng := rand.New(rand.NewSource(56))
	a := graphWithIsolated(t, rng, 25, 4)
	x := randTensor(rng, 25, 8)
	for _, agg := range []AggOp{AggSum, AggMax, AggMean} {
		want, err := ReferenceSpMM(a, expr.CopySrc(25, 8), []*tensor.Tensor{x}, agg)
		if err != nil {
			t.Fatal(err)
		}
		got := runSpMMConfig(t, a, expr.CopySrc(25, 8), []*tensor.Tensor{x}, agg, nil, Options{Target: CPU})
		if !got.AllClose(want, 1e-4) {
			t.Fatalf("agg %s: whole-graph kernel drifted, max diff %v", agg, got.MaxAbsDiff(want))
		}
	}
}
