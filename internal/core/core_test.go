package core

import (
	"math/rand"
	"testing"

	"featgraph/internal/cudasim"
	"featgraph/internal/expr"
	"featgraph/internal/schedule"
	"featgraph/internal/sparse"
	"featgraph/internal/tensor"
)

func randTensor(rng *rand.Rand, shape ...int) *tensor.Tensor {
	t := tensor.New(shape...)
	t.FillUniform(rng, -1, 1)
	return t
}

// graphWithIsolated returns a random square graph that definitely contains
// at least one vertex with no in-edges, to exercise finalizeAgg.
func graphWithIsolated(t *testing.T, rng *rand.Rand, n, deg int) *sparse.CSR {
	t.Helper()
	coo := &sparse.COO{NumRows: n, NumCols: n}
	for r := 1; r < n; r++ { // row 0 stays empty
		seen := map[int32]bool{}
		for len(seen) < deg {
			c := int32(rng.Intn(n))
			if seen[c] {
				continue
			}
			seen[c] = true
			coo.Row = append(coo.Row, int32(r))
			coo.Col = append(coo.Col, c)
		}
	}
	csr, err := sparse.FromCOO(coo)
	if err != nil {
		t.Fatal(err)
	}
	return csr
}

func TestAggOpStringsAndIdentity(t *testing.T) {
	if AggSum.String() != "sum" || AggMax.String() != "max" || AggMin.String() != "min" || AggMean.String() != "mean" {
		t.Fatal("agg op strings wrong")
	}
	if AggSum.identity() != 0 || AggMean.identity() != 0 {
		t.Fatal("sum/mean identity should be 0")
	}
	if AggMax.identity() > -1e30 || AggMin.identity() < 1e30 {
		t.Fatal("max/min identities should be ∓inf")
	}
	if CPU.String() != "cpu" || GPU.String() != "gpu" {
		t.Fatal("target strings wrong")
	}
}

func TestSpMMCopySrcMatchesDenseMatMul(t *testing.T) {
	// Vanilla SpMM: copy-src message + sum aggregation must equal A × X
	// computed densely (A binary).
	rng := rand.New(rand.NewSource(1))
	const n, d = 30, 16
	adj := sparse.Random(rng, n, n, 5)
	x := randTensor(rng, n, d)

	k, err := BuildSpMM(adj, expr.CopySrc(n, d), []*tensor.Tensor{x}, AggSum, nil, Options{Target: CPU})
	if err != nil {
		t.Fatal(err)
	}
	out := tensor.New(n, d)
	if _, err := k.Run(out); err != nil {
		t.Fatal(err)
	}

	dense := tensor.New(n, n)
	for r := 0; r < n; r++ {
		for p := adj.RowPtr[r]; p < adj.RowPtr[r+1]; p++ {
			dense.Set(1, r, int(adj.ColIdx[p]))
		}
	}
	want := tensor.MatMul(tensor.New(n, d), dense, x)
	if !out.AllClose(want, 1e-4) {
		t.Fatalf("SpMM != A×X, max diff %v", out.MaxAbsDiff(want))
	}
}

// runSpMMConfig builds and runs one configuration, returning the output.
func runSpMMConfig(t *testing.T, adj *sparse.CSR, udf *expr.UDF, inputs []*tensor.Tensor, agg AggOp, fds *schedule.FDS, opts Options) *tensor.Tensor {
	t.Helper()
	k, err := BuildSpMM(adj, udf, inputs, agg, fds, opts)
	if err != nil {
		t.Fatal(err)
	}
	rows, cols := k.OutShape()
	out := tensor.New(rows, cols)
	if _, err := k.Run(out); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestSpMMAllSchedulesMatchReference(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	const n, d = 40, 24
	adj := graphWithIsolated(t, rng, n, 6)
	x := randTensor(rng, n, d)
	e1 := randTensor(rng, adj.NNZ(), 1)
	ev := randTensor(rng, adj.NNZ(), d)
	w := randTensor(rng, 8, d)
	x8 := randTensor(rng, n, 8)

	type workload struct {
		name   string
		udf    *expr.UDF
		inputs []*tensor.Tensor
	}
	workloads := []workload{
		{"copy-src", expr.CopySrc(n, d), []*tensor.Tensor{x}},
		{"copy-dst", expr.CopyDst(n, d), []*tensor.Tensor{x}},
		{"copy-edge", expr.CopyEdge(adj.NNZ(), d), []*tensor.Tensor{ev}},
		{"src-mul-edge-scalar", expr.SrcMulEdgeScalar(n, adj.NNZ(), d), []*tensor.Tensor{x, e1}},
		{"src-mul-edge-vec", expr.SrcMulEdge(n, adj.NNZ(), d), []*tensor.Tensor{x, ev}},
		{"add-src-dst", expr.AddSrcDst(n, d), []*tensor.Tensor{x}},
		{"mlp", expr.MLPMessage(n, 8, d), []*tensor.Tensor{x8, w}},
	}
	aggs := []AggOp{AggSum, AggMax, AggMin, AggMean}
	for _, wl := range workloads {
		for _, agg := range aggs {
			want, err := ReferenceSpMM(adj, wl.udf, wl.inputs, agg)
			if err != nil {
				t.Fatal(err)
			}
			configs := []struct {
				name string
				fds  func() *schedule.FDS
				opts Options
			}{
				{"plain", func() *schedule.FDS { return nil }, Options{Target: CPU}},
				{"tiled", func() *schedule.FDS { return schedule.New().Split(wl.udf.OutAxes[0], 8) }, Options{Target: CPU}},
				{"partitioned", func() *schedule.FDS { return nil }, Options{Target: CPU, GraphPartitions: 4}},
				{"tiled+partitioned+threads", func() *schedule.FDS { return schedule.New().Split(wl.udf.OutAxes[0], 8) },
					Options{Target: CPU, GraphPartitions: 4, NumThreads: 4}},
			}
			for _, cfg := range configs {
				got := runSpMMConfig(t, adj, wl.udf, wl.inputs, agg, cfg.fds(), cfg.opts)
				if !got.AllClose(want, 1e-3) {
					t.Errorf("%s/%s/%s: max diff %v", wl.name, agg, cfg.name, got.MaxAbsDiff(want))
				}
			}
		}
	}
}

func TestSpMMGPUMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const n, d = 40, 24
	adj := graphWithIsolated(t, rng, n, 6)
	x := randTensor(rng, n, d)
	e1 := randTensor(rng, adj.NNZ(), 1)
	w := randTensor(rng, 8, d)
	x8 := randTensor(rng, n, 8)
	dev := cudasim.NewDevice(cudasim.Config{NumSMs: 4})

	type workload struct {
		name   string
		udf    *expr.UDF
		inputs []*tensor.Tensor
		agg    AggOp
	}
	workloads := []workload{
		{"copy-src-sum", expr.CopySrc(n, d), []*tensor.Tensor{x}, AggSum},
		{"copy-src-max", expr.CopySrc(n, d), []*tensor.Tensor{x}, AggMax},
		{"src-mul-edge-scalar", expr.SrcMulEdgeScalar(n, adj.NNZ(), d), []*tensor.Tensor{x, e1}, AggSum},
		{"mlp-sum", expr.MLPMessage(n, 8, d), []*tensor.Tensor{x8, w}, AggSum},
		{"mlp-mean", expr.MLPMessage(n, 8, d), []*tensor.Tensor{x8, w}, AggMean},
	}
	for _, wl := range workloads {
		want, err := ReferenceSpMM(adj, wl.udf, wl.inputs, wl.agg)
		if err != nil {
			t.Fatal(err)
		}
		fds := schedule.New().Bind(wl.udf.OutAxes[0], schedule.ThreadX)
		for _, hybrid := range []int32{0, 4} {
			got := runSpMMConfig(t, adj, wl.udf, wl.inputs, wl.agg, fds,
				Options{Target: GPU, Device: dev, HybridThreshold: hybrid})
			if !got.AllClose(want, 1e-3) {
				t.Errorf("%s hybrid=%d: max diff %v", wl.name, hybrid, got.MaxAbsDiff(want))
			}
		}
	}
}

func TestSpMMGPUReportsCycles(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	const n, d = 30, 16
	adj := sparse.Random(rng, n, n, 4)
	x := randTensor(rng, n, d)
	k, err := BuildSpMM(adj, expr.CopySrc(n, d), []*tensor.Tensor{x}, AggSum,
		schedule.New().Bind(expr.CopySrc(n, d).OutAxes[0], schedule.ThreadX),
		Options{Target: GPU})
	if err != nil {
		// The FDS axis belongs to a different UDF instance; this must fail.
		return
	}
	out := tensor.New(n, d)
	stats, err := k.Run(out)
	if err != nil {
		t.Fatal(err)
	}
	if stats.SimCycles == 0 {
		t.Fatal("GPU run should report simulated cycles")
	}
}

func TestSpMMFDSFromDifferentUDFRejected(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const n, d = 10, 4
	adj := sparse.Random(rng, n, n, 2)
	x := randTensor(rng, n, d)
	udf := expr.CopySrc(n, d)
	other := expr.CopySrc(n, d)
	fds := schedule.New().Split(other.OutAxes[0], 2)
	// other's axis has the same slot as udf's, so pointer identity must
	// distinguish them.
	if _, err := BuildSpMM(adj, udf, []*tensor.Tensor{x}, AggSum, fds, Options{Target: CPU}); err == nil {
		t.Fatal("FDS referencing a foreign UDF's axis should be rejected")
	}
}

func TestSpMMValidatesBindings(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	const n, d = 10, 4
	adj := sparse.Random(rng, n, n, 2)
	// X has wrong vertex count.
	xBad := randTensor(rng, n+1, d)
	if _, err := BuildSpMM(adj, expr.CopySrc(n+1, d), []*tensor.Tensor{xBad}, AggSum, nil, Options{Target: CPU}); err == nil {
		t.Fatal("src-indexed tensor with wrong vertex count should be rejected")
	}
	// Edge tensor too small.
	eBad := randTensor(rng, adj.NNZ()-1, d)
	if _, err := BuildSpMM(adj, expr.CopyEdge(adj.NNZ()-1, d), []*tensor.Tensor{eBad}, AggSum, nil, Options{Target: CPU}); err == nil {
		t.Fatal("undersized edge tensor should be rejected")
	}
}

func TestSpMMOutputShapeChecked(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n, d = 10, 4
	adj := sparse.Random(rng, n, n, 2)
	x := randTensor(rng, n, d)
	k, err := BuildSpMM(adj, expr.CopySrc(n, d), []*tensor.Tensor{x}, AggSum, nil, Options{Target: CPU})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := k.Run(tensor.New(n, d+1)); err == nil {
		t.Fatal("wrong output shape should be rejected")
	}
	if _, err := k.Run(tensor.New(n+1, d)); err == nil {
		t.Fatal("wrong leading dim should be rejected")
	}
}

func TestSpMMIsolatedVerticesZero(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	const n, d = 20, 8
	adj := graphWithIsolated(t, rng, n, 3)
	x := randTensor(rng, n, d)
	for _, agg := range []AggOp{AggSum, AggMax, AggMin, AggMean} {
		out := runSpMMConfig(t, adj, expr.CopySrc(n, d), []*tensor.Tensor{x}, agg, nil, Options{Target: CPU})
		for f := 0; f < d; f++ {
			if out.At(0, f) != 0 {
				t.Fatalf("agg %v: isolated vertex row not zero: %v", agg, out.Row(0))
			}
		}
	}
}

func TestSpMMPatternReporting(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	const n, d = 10, 4
	adj := sparse.Random(rng, n, n, 2)
	x := randTensor(rng, n, d)
	k, err := BuildSpMM(adj, expr.CopySrc(n, d), []*tensor.Tensor{x}, AggSum, nil, Options{Target: CPU})
	if err != nil {
		t.Fatal(err)
	}
	if k.Pattern() != "copy-src" {
		t.Fatalf("Pattern = %q", k.Pattern())
	}
}

func TestSDDMMDotMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	const n, d = 40, 24
	adj := sparse.Random(rng, n, n, 6)
	x := randTensor(rng, n, d)
	udf := expr.DotAttention(n, d)
	want, err := ReferenceSDDMM(adj, udf, []*tensor.Tensor{x})
	if err != nil {
		t.Fatal(err)
	}
	redAxis := findReduceAxis(udf.Body)
	configs := []struct {
		name string
		fds  *schedule.FDS
		opts Options
	}{
		{"plain", nil, Options{Target: CPU}},
		{"hilbert", nil, Options{Target: CPU, Hilbert: true}},
		{"reduce-split", schedule.New().Split(redAxis, 8), Options{Target: CPU}},
		{"threads", nil, Options{Target: CPU, NumThreads: 4}},
		{"hilbert+split+threads", schedule.New().Split(redAxis, 8), Options{Target: CPU, Hilbert: true, NumThreads: 4}},
	}
	for _, cfg := range configs {
		k, err := BuildSDDMM(adj, udf, []*tensor.Tensor{x}, cfg.fds, cfg.opts)
		if err != nil {
			t.Fatal(err)
		}
		out := tensor.New(adj.NNZ(), 1)
		if _, err := k.Run(out); err != nil {
			t.Fatal(err)
		}
		if !out.AllClose(want, 1e-3) {
			t.Errorf("%s: max diff %v", cfg.name, out.MaxAbsDiff(want))
		}
	}
}

func TestSDDMMGenericMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const n, h, d = 30, 4, 16
	adj := sparse.Random(rng, n, n, 5)
	x := randTensor(rng, n, h, d)
	udf := expr.MultiHeadDot(n, h, d)
	want, err := ReferenceSDDMM(adj, udf, []*tensor.Tensor{x})
	if err != nil {
		t.Fatal(err)
	}
	for _, opts := range []Options{
		{Target: CPU},
		{Target: CPU, Hilbert: true, NumThreads: 3},
	} {
		k, err := BuildSDDMM(adj, udf, []*tensor.Tensor{x}, nil, opts)
		if err != nil {
			t.Fatal(err)
		}
		out := tensor.New(adj.NNZ(), h)
		if _, err := k.Run(out); err != nil {
			t.Fatal(err)
		}
		if !out.AllClose(want, 1e-3) {
			t.Errorf("opts %+v: max diff %v", opts, out.MaxAbsDiff(want))
		}
	}
}

func TestSDDMMGPUMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	const n, d = 40, 32
	adj := sparse.Random(rng, n, n, 6)
	x := randTensor(rng, n, d)
	udf := expr.DotAttention(n, d)
	want, err := ReferenceSDDMM(adj, udf, []*tensor.Tensor{x})
	if err != nil {
		t.Fatal(err)
	}
	dev := cudasim.NewDevice(cudasim.Config{NumSMs: 4})
	redAxis := findReduceAxis(udf.Body)

	// With tree reduction.
	fds := schedule.New().TreeReduce(redAxis, schedule.ThreadX)
	kTree, err := BuildSDDMM(adj, udf, []*tensor.Tensor{x}, fds, Options{Target: GPU, Device: dev})
	if err != nil {
		t.Fatal(err)
	}
	outTree := tensor.New(adj.NNZ(), 1)
	statsTree, err := kTree.Run(outTree)
	if err != nil {
		t.Fatal(err)
	}
	if !outTree.AllClose(want, 1e-3) {
		t.Fatalf("tree-reduce: max diff %v", outTree.MaxAbsDiff(want))
	}

	// Without tree reduction (naive one-thread-per-edge dot).
	kNaive, err := BuildSDDMM(adj, udf, []*tensor.Tensor{x}, nil, Options{Target: GPU, Device: dev})
	if err != nil {
		t.Fatal(err)
	}
	outNaive := tensor.New(adj.NNZ(), 1)
	statsNaive, err := kNaive.Run(outNaive)
	if err != nil {
		t.Fatal(err)
	}
	if !outNaive.AllClose(want, 1e-3) {
		t.Fatalf("naive: max diff %v", outNaive.MaxAbsDiff(want))
	}
	// Tree reduction must be faster in simulated cycles (Figure 12).
	if statsTree.SimCycles >= statsNaive.SimCycles {
		t.Fatalf("tree reduction cycles %d not better than naive %d", statsTree.SimCycles, statsNaive.SimCycles)
	}
}

func TestSDDMMGPUGenericMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	const n, h, d = 20, 4, 8
	adj := sparse.Random(rng, n, n, 4)
	x := randTensor(rng, n, h, d)
	udf := expr.MultiHeadDot(n, h, d)
	want, err := ReferenceSDDMM(adj, udf, []*tensor.Tensor{x})
	if err != nil {
		t.Fatal(err)
	}
	fds := schedule.New().Bind(udf.OutAxes[0], schedule.ThreadX)
	k, err := BuildSDDMM(adj, udf, []*tensor.Tensor{x}, fds, Options{Target: GPU, Device: cudasim.NewDevice(cudasim.Config{NumSMs: 2})})
	if err != nil {
		t.Fatal(err)
	}
	out := tensor.New(adj.NNZ(), h)
	stats, err := k.Run(out)
	if err != nil {
		t.Fatal(err)
	}
	if !out.AllClose(want, 1e-3) {
		t.Fatalf("max diff %v", out.MaxAbsDiff(want))
	}
	if stats.SimCycles == 0 {
		t.Fatal("GPU run should charge cycles")
	}
}

func TestSDDMMOutputShapeChecked(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	const n, d = 10, 4
	adj := sparse.Random(rng, n, n, 2)
	x := randTensor(rng, n, d)
	k, err := BuildSDDMM(adj, expr.DotAttention(n, d), []*tensor.Tensor{x}, nil, Options{Target: CPU})
	if err != nil {
		t.Fatal(err)
	}
	if r, c := k.OutShape(); r != adj.NNZ() || c != 1 {
		t.Fatalf("OutShape = %d,%d", r, c)
	}
	if _, err := k.Run(tensor.New(adj.NNZ()+1, 1)); err == nil {
		t.Fatal("wrong output shape should be rejected")
	}
}

func TestSpMMGradientPatternsRoundTrip(t *testing.T) {
	// The paper notes the gradient of SpMM w.r.t. A follows the SDDMM
	// pattern and vice versa (§II-A). Verify the algebra with the two
	// kernels: d(A×X)/dA[u→v] = dH[v]·X[u], computable as SDDMM(dH, X)
	// on the transposed pairing.
	rng := rand.New(rand.NewSource(15))
	const n, d = 15, 6
	adj := sparse.Random(rng, n, n, 3)
	x := randTensor(rng, n, d)
	dh := randTensor(rng, n, d)

	// SDDMM with X read via Src and dH via Dst gives exactly dH[v]·X[u].
	b := expr.NewBuilder()
	xv := b.Placeholder("X", n, d)
	gv := b.Placeholder("dH", n, d)
	i := b.OutAxis("i", 1)
	kk := b.ReduceAxis("k", d)
	udf := b.UDF(expr.Sum(kk, expr.Mul(xv.At(expr.Src, kk), gv.At(expr.Dst, kk))), i)

	k2, err := BuildSDDMM(adj, udf, []*tensor.Tensor{x, dh}, nil, Options{Target: CPU})
	if err != nil {
		t.Fatal(err)
	}
	grad := tensor.New(adj.NNZ(), 1)
	if _, err := k2.Run(grad); err != nil {
		t.Fatal(err)
	}
	// Check a few entries directly.
	for r := 0; r < n; r++ {
		for p := adj.RowPtr[r]; p < adj.RowPtr[r+1]; p++ {
			u := int(adj.ColIdx[p])
			want := tensor.Dot(x.Row(u), dh.Row(r))
			got := grad.At(int(adj.EID[p]), 0)
			if diff := float64(got - want); diff > 1e-4 || diff < -1e-4 {
				t.Fatalf("grad[%d→%d] = %v, want %v", u, r, got, want)
			}
		}
	}
}
