// The persistent execution engine: pooled, reusable per-run state driving
// kernel phases through the shared workpool instead of spawning goroutines
// per run.
//
// A built kernel owns a small freelist of run states. Each state bundles
// everything one execution needs — run control, per-runner scratch, and a
// workpool.Job whose Body/Stop closures are created once — so a steady-state
// RunCtx performs no heap allocation: epoch 2..N of a training loop touches
// only memory that epoch 1 already allocated. Concurrent Runs of the same
// kernel each draw (or transiently create) their own state, so outputs never
// interleave.
//
// Phases dispatch over precomputed chunk lists (see chunks.go): SpMM row
// phases use edge-balanced chunks so skewed degree distributions cannot
// starve the pool, SDDMM edge phases and aggregation finalization use
// uniform chunks. Panic isolation, cancellation polling, and faultinject
// sites keep the exact semantics of the legacy scheduler (core.parallelFor,
// still available via Options.LegacySched): a panicking chunk becomes a
// *KernelError attributing the failing runner slot and schedule position,
// and every runner polls the run control between cancelChunk rows/edges.
package core

import (
	"context"
	"sync/atomic"
	"time"

	"featgraph/internal/admission"
	"featgraph/internal/codegen"
	"featgraph/internal/faultinject"
	"featgraph/internal/partition"
	"featgraph/internal/sparse"
	"featgraph/internal/telemetry"
	"featgraph/internal/tensor"
	"featgraph/internal/workpool"
)

// runStatePoolCap bounds how many idle run states a kernel retains. Two
// covers the common ping-pong of forward/backward kernels; additional
// concurrent Runs fall back to transient states.
const runStatePoolCap = 2

// guard wraps a chunk body with the engine's panic isolation: a panicking
// chunk is recorded on rc as a *KernelError attributing the runner slot and
// the schedule position site points at. site is read at recovery time, which
// is safe because phases are barriers — site only changes between phases.
func guard(rc *runControl, site *workerSite, body func(slot, chunk int)) func(slot, chunk int) {
	return func(slot, chunk int) {
		defer func() {
			if r := recover(); r != nil {
				if telemetry.Enabled() {
					mRecoveredPanics.Inc()
				}
				rc.fail(&KernelError{
					Kernel: site.kernel, Target: site.target,
					Worker: slot, Tile: site.tile, Part: site.part, Value: r,
				})
			}
		}()
		body(slot, chunk)
	}
}

// scratchSlots returns how many per-runner scratch slots a CPU kernel with
// the given thread option needs: a phase never uses more runners than the
// requested threads, nor more than the pool can field.
func scratchSlots(numThreads int) int {
	return min(max(numThreads, 1), workpool.Default().MaxRunners())
}

// --- SpMM ---

// spmmRunState is one execution's worth of reusable SpMM state.
type spmmRunState struct {
	k    *SpMMKernel
	rc   runControl
	job  workpool.Job
	site workerSite

	// Per-phase dispatch parameters, set between pool runs (phases are
	// barriers, so runners never observe a mutation mid-phase).
	out      *tensor.Tensor
	part     *sparse.CSR
	tile     partition.Range
	chunks   []partition.Range
	finalize bool

	// Per-run accounting, reset by runCPUEngine and folded into RunStats:
	// edge traversals performed and chunks executed by helper slots
	// (stolen from the submitter). Atomic because chunks retire on
	// concurrent pool runners; two uncontended-in-practice adds per chunk,
	// cheap enough to populate RunStats unconditionally.
	edges  atomic.Uint64
	stolen atomic.Uint64

	// beacon is the progress counter the stall watchdog scans; the pool
	// ticks it once per retired chunk via job.Progress.
	beacon admission.Beacon

	scratch []*spmmScratch // indexed by runner slot
}

func (k *SpMMKernel) newRunState() *spmmRunState {
	st := &spmmRunState{k: k, site: workerSite{kernel: "spmm", target: CPU}}
	st.scratch = make([]*spmmScratch, scratchSlots(k.opts.NumThreads))
	for w := range st.scratch {
		st.scratch[w] = &spmmScratch{
			env: k.compiled.NewEnv(),
			msg: make([]float32, k.maxTile),
			tmp: make([]float32, k.tmpLen),
		}
	}
	st.job.Body = guard(&st.rc, &st.site, st.runChunk)
	st.job.Stop = st.rc.stop
	st.job.Progress = st.beacon.Counter()
	return st
}

func (k *SpMMKernel) getRunState() *spmmRunState {
	select {
	case st := <-k.states:
		return st
	default:
		return k.newRunState()
	}
}

func (k *SpMMKernel) putRunState(st *spmmRunState) {
	st.out = nil
	st.part = nil
	st.chunks = nil
	select {
	case k.states <- st:
	default:
	}
}

// runChunk processes one chunk of the current phase: a row range of the
// current (tile, partition) pass, or of the finalization pass.
func (st *spmmRunState) runChunk(slot, ci int) {
	r := st.chunks[ci]
	if slot != 0 {
		st.stolen.Add(1)
	}
	if st.finalize {
		finalizeAgg(st.k.agg, st.out, st.k.adj, r.Lo, r.Hi)
		return
	}
	st.edges.Add(uint64(st.part.RowPtr[r.Hi] - st.part.RowPtr[r.Lo]))
	faultinject.Hit(faultinject.SiteSpMMCPUWorker, st.rc.done, st.rc.quit)
	for lo := r.Lo; lo < r.Hi; lo += cancelChunk {
		if st.rc.stop() {
			return
		}
		st.k.cpuRows(st.out, st.part, st.tile, st.scratch[slot], lo, min(lo+cancelChunk, r.Hi))
	}
	ostride := st.out.RowStride()
	odata := st.out.Data()
	faultinject.CorruptFloats(faultinject.SiteSpMMCPUOutput, odata[r.Lo*ostride:r.Hi*ostride])
}

// runCPUEngine executes the tiled, partitioned CPU schedule on the
// persistent engine: the same loop structure as the legacy scheduler
// (feature tiles outermost, partitions next, rows innermost) but with rows
// split into edge-balanced chunks drained from the shared pool, and zero
// per-run allocation.
func (k *SpMMKernel) runCPUEngine(ctx context.Context, out *tensor.Tensor, stats *RunStats) error {
	threads := max(k.opts.NumThreads, 1)
	pool := workpool.Default()
	st := k.getRunState()
	defer k.putRunState(st)
	if gov := admission.Resolve(k.opts.Admission); gov.WatchdogEnabled() {
		wctx, cancel := context.WithCancelCause(ctx)
		defer cancel(nil)
		defer gov.Watch(cancel, &st.beacon, "spmm/cpu-engine")()
		ctx = wctx
	}
	st.rc.reset(ctx)
	st.out = out
	st.edges.Store(0)
	st.stolen.Store(0)
	tracing := telemetry.TraceActive()
	if !k.partial {
		out.Fill(k.agg.identity())
	}

	var phaseStart time.Time
	for ti, tile := range k.tiles {
		for pi, part := range k.parts {
			if st.rc.stop() {
				return stallCause(ctx, st.rc.verdict())
			}
			st.tile, st.part, st.chunks, st.finalize = tile, part, k.chunks[pi], false
			st.site.tile, st.site.part = ti, pi
			if tracing {
				phaseStart = time.Now()
			}
			pool.Run(&st.job, len(st.chunks), threads)
			if tracing {
				telemetry.RecordSpan("spmm.phase", 0, phaseStart, time.Since(phaseStart), "tile", int64(ti), "part", int64(pi), 2)
			}
		}
	}
	if !st.rc.stop() && !k.partial {
		st.finalize = true
		st.chunks = k.finChunks
		st.site.tile, st.site.part = -1, -1
		if tracing {
			phaseStart = time.Now()
		}
		pool.Run(&st.job, len(k.finChunks), threads)
		if tracing {
			telemetry.RecordSpan("spmm.finalize", 0, phaseStart, time.Since(phaseStart), "chunks", int64(len(k.finChunks)), "", 0, 1)
		}
	}
	stats.EdgesProcessed = st.edges.Load()
	stats.ChunksStolen = st.stolen.Load()
	return stallCause(ctx, st.rc.verdict())
}

// --- SDDMM ---

// sddmmRunState is one execution's worth of reusable SDDMM state.
type sddmmRunState struct {
	k    *SDDMMKernel
	rc   runControl
	job  workpool.Job
	site workerSite

	out    *tensor.Tensor
	chunks []partition.Range
	lo, hi int  // active tile bounds: reduce axis (dot) or output axis
	dot    bool // dot fast path vs generic compiled path

	// Per-run accounting (see spmmRunState).
	edges  atomic.Uint64
	stolen atomic.Uint64

	// beacon is the progress counter the stall watchdog scans (see
	// spmmRunState.beacon).
	beacon admission.Beacon

	envs []*codegen.Env // indexed by runner slot (generic path)
}

func (k *SDDMMKernel) newRunState() *sddmmRunState {
	st := &sddmmRunState{k: k, site: workerSite{kernel: "sddmm", target: CPU, part: -1}}
	st.envs = make([]*codegen.Env, scratchSlots(k.opts.NumThreads))
	for w := range st.envs {
		st.envs[w] = k.compiled.NewEnv()
	}
	st.job.Body = guard(&st.rc, &st.site, st.runChunk)
	st.job.Stop = st.rc.stop
	st.job.Progress = st.beacon.Counter()
	return st
}

func (k *SDDMMKernel) getRunState() *sddmmRunState {
	select {
	case st := <-k.states:
		return st
	default:
		return k.newRunState()
	}
}

func (k *SDDMMKernel) putRunState(st *sddmmRunState) {
	st.out = nil
	st.chunks = nil
	select {
	case k.states <- st:
	default:
	}
}

// runChunk processes one edge chunk of the current phase.
func (st *sddmmRunState) runChunk(slot, ci int) {
	r := st.chunks[ci]
	if slot != 0 {
		st.stolen.Add(1)
	}
	st.edges.Add(uint64(r.Hi - r.Lo))
	k := st.k
	ed := k.edges
	odata := st.out.Data()
	faultinject.Hit(faultinject.SiteSDDMMCPUWorker, st.rc.done, st.rc.quit)

	if st.dot {
		x, y := k.match.X, k.match.Y
		xd, xs := x.Data(), x.RowStride()
		yd, ys := y.Data(), y.RowStride()
		klo, khi := st.lo, st.hi
		for clo := r.Lo; clo < r.Hi; clo += cancelChunk {
			if st.rc.stop() {
				return
			}
			for i := clo; i < min(clo+cancelChunk, r.Hi); i++ {
				u, v := int(ed.Col[i]), int(ed.Row[i])+k.dstBase
				xrow := xd[u*xs+klo : u*xs+khi]
				yrow := yd[v*ys+klo : v*ys+khi]
				var s float32
				for f := range xrow {
					s += xrow[f] * yrow[f]
				}
				odata[ed.EID[i]] += s
			}
		}
		faultinject.CorruptFloats(faultinject.SiteSDDMMCPUOutput, odata[r.Lo:r.Hi])
		return
	}

	env := st.envs[slot]
	ostride := st.out.RowStride()
	lo, hi := st.lo, st.hi
	for clo := r.Lo; clo < r.Hi; clo += cancelChunk {
		if st.rc.stop() {
			return
		}
		for i := clo; i < min(clo+cancelChunk, r.Hi); i++ {
			eid := int(ed.EID[i])
			k.compiled.Eval(env, ed.Col[i], ed.Row[i]+int32(k.dstBase), ed.EID[i], odata[eid*ostride+lo:eid*ostride+hi], lo, hi)
		}
	}
	faultinject.CorruptFloats(faultinject.SiteSDDMMCPUOutput, odata[r.Lo*ostride:r.Hi*ostride])
}

// runCPUEngine executes the SDDMM CPU schedule on the persistent engine:
// one pooled phase per tile over uniform edge chunks of the traversal order
// (Hilbert or row-major), with zero per-run allocation.
func (k *SDDMMKernel) runCPUEngine(ctx context.Context, out *tensor.Tensor, stats *RunStats) error {
	threads := max(k.opts.NumThreads, 1)
	pool := workpool.Default()
	st := k.getRunState()
	defer k.putRunState(st)
	if gov := admission.Resolve(k.opts.Admission); gov.WatchdogEnabled() {
		wctx, cancel := context.WithCancelCause(ctx)
		defer cancel(nil)
		defer gov.Watch(cancel, &st.beacon, "sddmm/cpu-engine")()
		ctx = wctx
	}
	st.rc.reset(ctx)
	st.out = out
	st.chunks = k.edgeChunks
	st.edges.Store(0)
	st.stolen.Store(0)
	tracing := telemetry.TraceActive()

	var phaseStart time.Time
	if k.match.Pattern == codegen.DotSrcDst {
		if !k.partial {
			out.Zero()
		}
		st.dot = true
		for kti, kt := range k.redTiles {
			if st.rc.stop() {
				return stallCause(ctx, st.rc.verdict())
			}
			st.lo, st.hi = kt.Lo, kt.Hi
			st.site.tile = kti
			if tracing {
				phaseStart = time.Now()
			}
			pool.Run(&st.job, len(st.chunks), threads)
			if tracing {
				telemetry.RecordSpan("sddmm.phase", 0, phaseStart, time.Since(phaseStart), "tile", int64(kti), "", 0, 1)
			}
		}
		stats.EdgesProcessed = st.edges.Load()
		stats.ChunksStolen = st.stolen.Load()
		return stallCause(ctx, st.rc.verdict())
	}

	st.dot = false
	for ti, tile := range k.tiles {
		if st.rc.stop() {
			return stallCause(ctx, st.rc.verdict())
		}
		st.lo, st.hi = tile.Lo, tile.Hi
		st.site.tile = ti
		if tracing {
			phaseStart = time.Now()
		}
		pool.Run(&st.job, len(st.chunks), threads)
		if tracing {
			telemetry.RecordSpan("sddmm.phase", 0, phaseStart, time.Since(phaseStart), "tile", int64(ti), "", 0, 1)
		}
	}
	stats.EdgesProcessed = st.edges.Load()
	stats.ChunksStolen = st.stolen.Load()
	return stallCause(ctx, st.rc.verdict())
}
