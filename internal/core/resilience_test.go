package core

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"featgraph/internal/cudasim"
	"featgraph/internal/expr"
	"featgraph/internal/faultinject"
	"featgraph/internal/sparse"
	"featgraph/internal/tensor"
)

// buildTestSpMM builds a small copy-src/sum kernel for resilience tests.
func buildTestSpMM(t *testing.T, seed int64, opts Options) (*SpMMKernel, *tensor.Tensor, *sparse.CSR, []*tensor.Tensor) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	const n, d = 32, 8
	adj := sparse.Random(rng, n, n, 4)
	x := randTensor(rng, n, d)
	k, err := BuildSpMM(adj, expr.CopySrc(n, d), []*tensor.Tensor{x}, AggSum, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	return k, tensor.New(n, d), adj, []*tensor.Tensor{x}
}

func TestSpMMRunCtxPreCancelled(t *testing.T) {
	for _, target := range []Target{CPU, GPU} {
		k, out, _, _ := buildTestSpMM(t, 20, Options{Target: target, NumThreads: 2})
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		if _, err := k.RunCtx(ctx, out); !errors.Is(err, context.Canceled) {
			t.Fatalf("%v: want context.Canceled, got %v", target, err)
		}
	}
}

func TestSDDMMRunCtxPreCancelled(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	const n, d = 32, 8
	adj := sparse.Random(rng, n, n, 4)
	x := randTensor(rng, n, d)
	k, err := BuildSDDMM(adj, expr.DotAttention(n, d), []*tensor.Tensor{x}, nil, Options{Target: CPU})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := k.RunCtx(ctx, tensor.New(adj.NNZ(), 1)); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

// waitGoroutines polls until the goroutine count drops back to at most want.
func waitGoroutines(t *testing.T, want int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= want {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d running, want <= %d", runtime.NumGoroutine(), want)
}

func TestSpMMCancelDuringStalledWorkers(t *testing.T) {
	// Workers stall far longer than the context deadline; cancellation must
	// release them (the stall selects on the run's done channel) and RunCtx
	// must return the context error without leaking goroutines.
	defer faultinject.Arm(faultinject.SiteSpMMCPUWorker,
		&faultinject.Fault{Kind: faultinject.Stall, Delay: 10 * time.Second})()
	k, out, _, _ := buildTestSpMM(t, 22, Options{Target: CPU, NumThreads: 4, GraphPartitions: 2})
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := k.RunCtx(ctx, out)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want context.DeadlineExceeded, got %v", err)
	}
	if took := time.Since(start); took > 5*time.Second {
		t.Fatalf("cancellation took %v; stalled workers not released", took)
	}
	waitGoroutines(t, before)
}

func TestSpMMGPUCancelDuringStalledBlocks(t *testing.T) {
	// Same for the simulated device: stalled blocks observe ctx.Done through
	// the launch, and cancellation must NOT trigger the CPU fallback.
	defer faultinject.Arm(faultinject.SiteCudasimBlock,
		&faultinject.Fault{Kind: faultinject.Stall, Delay: 10 * time.Second})()
	k, out, _, _ := buildTestSpMM(t, 23, Options{Target: GPU})
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	stats, err := k.RunCtx(ctx, out)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want context.DeadlineExceeded, got %v", err)
	}
	if stats.Fallback {
		t.Fatal("cancellation must not trigger CPU fallback")
	}
	waitGoroutines(t, before)
}

func TestSpMMWorkerPanicIsKernelError(t *testing.T) {
	defer faultinject.Arm(faultinject.SiteSpMMCPUWorker,
		&faultinject.Fault{Kind: faultinject.Panic, Value: "bad UDF"})()
	k, out, _, _ := buildTestSpMM(t, 24, Options{Target: CPU, NumThreads: 4})
	_, err := k.Run(out)
	var ke *KernelError
	if !errors.As(err, &ke) {
		t.Fatalf("want *KernelError, got %v", err)
	}
	if ke.Kernel != "spmm" || ke.Target != CPU || ke.Value != "bad UDF" {
		t.Fatalf("bad KernelError fields: %+v", ke)
	}
	if !strings.Contains(ke.Error(), "spmm/cpu") || !strings.Contains(ke.Error(), "bad UDF") {
		t.Fatalf("unhelpful message: %q", ke.Error())
	}
}

func TestSDDMMWorkerPanicIsKernelError(t *testing.T) {
	defer faultinject.Arm(faultinject.SiteSDDMMCPUWorker,
		&faultinject.Fault{Kind: faultinject.Panic})()
	rng := rand.New(rand.NewSource(25))
	const n, d = 32, 8
	adj := sparse.Random(rng, n, n, 4)
	x := randTensor(rng, n, d)
	for _, hilbert := range []bool{false, true} {
		k, err := BuildSDDMM(adj, expr.DotAttention(n, d), []*tensor.Tensor{x}, nil,
			Options{Target: CPU, NumThreads: 4, Hilbert: hilbert})
		if err != nil {
			t.Fatal(err)
		}
		_, err = k.Run(tensor.New(adj.NNZ(), 1))
		var ke *KernelError
		if !errors.As(err, &ke) {
			t.Fatalf("hilbert=%v: want *KernelError, got %v", hilbert, err)
		}
		if ke.Kernel != "sddmm" || ke.Target != CPU {
			t.Fatalf("bad KernelError fields: %+v", ke)
		}
	}
}

func TestSpMMGPURunFallsBackToCPU(t *testing.T) {
	// A device fault fails the launch; the kernel retries on the CPU path,
	// records the fallback, and still produces the correct result.
	defer faultinject.Arm(faultinject.SiteCudasimBlock,
		&faultinject.Fault{Kind: faultinject.Panic, Value: "device fault"})()
	k, out, adj, inputs := buildTestSpMM(t, 26, Options{Target: GPU})
	stats, err := k.Run(out)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Fallback || !strings.Contains(stats.FallbackReason, "device fault") {
		t.Fatalf("want recorded fallback, got %+v", stats)
	}
	want, err := ReferenceSpMM(adj, expr.CopySrc(adj.NumCols, 8), inputs, AggSum)
	if err != nil {
		t.Fatal(err)
	}
	if !out.AllClose(want, 1e-4) {
		t.Fatalf("fallback output wrong, max diff %v", out.MaxAbsDiff(want))
	}
}

func TestSpMMGPUNoFallbackSurfacesKernelError(t *testing.T) {
	defer faultinject.Arm(faultinject.SiteCudasimBlock,
		&faultinject.Fault{Kind: faultinject.Panic, Value: "device fault"})()
	k, out, _, _ := buildTestSpMM(t, 27, Options{Target: GPU, NoFallback: true})
	_, err := k.Run(out)
	var ke *KernelError
	if !errors.As(err, &ke) {
		t.Fatalf("want *KernelError, got %v", err)
	}
	if ke.Kernel != "spmm" || ke.Target != GPU || ke.Value != "device fault" {
		t.Fatalf("bad KernelError fields: %+v", ke)
	}
}

func TestSDDMMGPURunFallsBackToCPU(t *testing.T) {
	defer faultinject.Arm(faultinject.SiteCudasimBlock,
		&faultinject.Fault{Kind: faultinject.Panic, Value: "device fault"})()
	rng := rand.New(rand.NewSource(28))
	const n, d = 32, 8
	adj := sparse.Random(rng, n, n, 4)
	x := randTensor(rng, n, d)
	udf := expr.DotAttention(n, d)
	k, err := BuildSDDMM(adj, udf, []*tensor.Tensor{x}, nil, Options{Target: GPU})
	if err != nil {
		t.Fatal(err)
	}
	out := tensor.New(adj.NNZ(), 1)
	stats, err := k.Run(out)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Fallback {
		t.Fatalf("want recorded fallback, got %+v", stats)
	}
	want, err := ReferenceSDDMM(adj, udf, []*tensor.Tensor{x})
	if err != nil {
		t.Fatal(err)
	}
	if !out.AllClose(want, 1e-3) {
		t.Fatalf("fallback output wrong, max diff %v", out.MaxAbsDiff(want))
	}
}

func TestSpMMGPUBuildDegradesToCPU(t *testing.T) {
	// A hybrid-partitioned schedule whose feature tile cannot fit in shared
	// memory fails the device build; the kernel degrades to the CPU path at
	// build time and every run reports the standing fallback.
	rng := rand.New(rand.NewSource(29))
	const n, d = 32, 8
	adj := sparse.Random(rng, n, n, 4)
	x := randTensor(rng, n, d)
	dev := cudasim.NewDevice(cudasim.Config{SharedMemPerBlock: 4}) // one float32
	opts := Options{Target: GPU, Device: dev, HybridThreshold: 1}

	k, err := BuildSpMM(adj, expr.CopySrc(n, d), []*tensor.Tensor{x}, AggSum, nil, opts)
	if err != nil {
		t.Fatalf("build should degrade, not fail: %v", err)
	}
	out := tensor.New(n, d)
	stats, err := k.Run(out)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Fallback || !strings.Contains(stats.FallbackReason, "shared memory") {
		t.Fatalf("want shared-memory fallback recorded, got %+v", stats)
	}
	want, err := ReferenceSpMM(adj, expr.CopySrc(n, d), []*tensor.Tensor{x}, AggSum)
	if err != nil {
		t.Fatal(err)
	}
	if !out.AllClose(want, 1e-4) {
		t.Fatalf("degraded output wrong, max diff %v", out.MaxAbsDiff(want))
	}

	opts.NoFallback = true
	if _, err := BuildSpMM(adj, expr.CopySrc(n, d), []*tensor.Tensor{x}, AggSum, nil, opts); err == nil {
		t.Fatal("NoFallback build should surface the device error")
	}
}

func TestSpMMCheckNumericsReportsNaN(t *testing.T) {
	defer faultinject.Arm(faultinject.SiteSpMMCPUOutput,
		&faultinject.Fault{Kind: faultinject.NaN})()
	k, out, _, _ := buildTestSpMM(t, 30, Options{Target: CPU, NumThreads: 2, CheckNumerics: true})
	_, err := k.Run(out)
	var ne *NumericError
	if !errors.As(err, &ne) {
		t.Fatalf("want *NumericError, got %v", err)
	}
	if ne.Kernel != "spmm" || !math.IsNaN(float64(ne.Value)) {
		t.Fatalf("bad NumericError fields: %+v", ne)
	}
	if v := out.At(ne.Row, ne.Col); !math.IsNaN(float64(v)) {
		t.Fatalf("reported location (%d,%d) holds %v, not NaN", ne.Row, ne.Col, v)
	}
	if !strings.Contains(ne.Error(), "vertex") {
		t.Fatalf("unhelpful message: %q", ne.Error())
	}
}

func TestSDDMMCheckNumericsReportsNaN(t *testing.T) {
	defer faultinject.Arm(faultinject.SiteSDDMMCPUOutput,
		&faultinject.Fault{Kind: faultinject.NaN})()
	rng := rand.New(rand.NewSource(31))
	const n, d = 32, 8
	adj := sparse.Random(rng, n, n, 4)
	x := randTensor(rng, n, d)
	k, err := BuildSDDMM(adj, expr.DotAttention(n, d), []*tensor.Tensor{x}, nil,
		Options{Target: CPU, CheckNumerics: true})
	if err != nil {
		t.Fatal(err)
	}
	_, err = k.Run(tensor.New(adj.NNZ(), 1))
	var ne *NumericError
	if !errors.As(err, &ne) {
		t.Fatalf("want *NumericError, got %v", err)
	}
	if ne.Kernel != "sddmm" || !strings.Contains(ne.Error(), "edge") {
		t.Fatalf("bad NumericError: %+v (%q)", ne, ne.Error())
	}
}

func TestCheckNumericsCleanRunPasses(t *testing.T) {
	k, out, _, _ := buildTestSpMM(t, 32, Options{Target: CPU, CheckNumerics: true})
	if _, err := k.Run(out); err != nil {
		t.Fatalf("clean run failed numerics check: %v", err)
	}
}

func TestSpMMZeroDegreeAggMeanFinite(t *testing.T) {
	// Regression: mean over an empty neighborhood must be 0, not 0/0 = NaN,
	// on both targets — verified by running under CheckNumerics.
	rng := rand.New(rand.NewSource(33))
	const n, d = 24, 8
	adj := graphWithIsolated(t, rng, n, 3)
	x := randTensor(rng, n, d)
	for _, target := range []Target{CPU, GPU} {
		k, err := BuildSpMM(adj, expr.CopySrc(n, d), []*tensor.Tensor{x}, AggMean, nil,
			Options{Target: target, CheckNumerics: true})
		if err != nil {
			t.Fatal(err)
		}
		out := tensor.New(n, d)
		if _, err := k.Run(out); err != nil {
			t.Fatalf("%v: %v", target, err)
		}
		for f := 0; f < d; f++ {
			if out.At(0, f) != 0 {
				t.Fatalf("%v: zero-degree mean row not zero: %v", target, out.Row(0))
			}
		}
	}
}

func TestSpMMGPUIsolatedVerticesZero(t *testing.T) {
	// GPU-path counterpart of TestSpMMIsolatedVerticesZero: isolated
	// vertices finalize to 0 for every operator (max/min identities are
	// ±Inf, so this exercises the epilogue, not just the fill).
	rng := rand.New(rand.NewSource(34))
	const n, d = 24, 8
	adj := graphWithIsolated(t, rng, n, 3)
	x := randTensor(rng, n, d)
	for _, agg := range []AggOp{AggSum, AggMax, AggMin, AggMean} {
		k, err := BuildSpMM(adj, expr.CopySrc(n, d), []*tensor.Tensor{x}, agg, nil,
			Options{Target: GPU, CheckNumerics: true})
		if err != nil {
			t.Fatal(err)
		}
		out := tensor.New(n, d)
		if _, err := k.Run(out); err != nil {
			t.Fatalf("agg %v: %v", agg, err)
		}
		for f := 0; f < d; f++ {
			if out.At(0, f) != 0 {
				t.Fatalf("agg %v: isolated vertex row not zero: %v", agg, out.Row(0))
			}
		}
	}
}

func TestConcurrentRunsDistinctOutputs(t *testing.T) {
	// One built kernel, many concurrent Runs into distinct outputs — the
	// documented concurrency contract, checked under -race.
	k, _, adj, inputs := buildTestSpMM(t, 35, Options{Target: CPU, NumThreads: 3, GraphPartitions: 2})
	want, err := ReferenceSpMM(adj, expr.CopySrc(adj.NumCols, 8), inputs, AggSum)
	if err != nil {
		t.Fatal(err)
	}
	const runs = 8
	outs := make([]*tensor.Tensor, runs)
	var wg sync.WaitGroup
	errs := make([]error, runs)
	for i := range outs {
		outs[i] = tensor.New(adj.NumRows, 8)
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = k.Run(outs[i])
		}(i)
	}
	wg.Wait()
	for i := range outs {
		if errs[i] != nil {
			t.Fatalf("run %d: %v", i, errs[i])
		}
		if !outs[i].AllClose(want, 1e-4) {
			t.Fatalf("run %d diverged, max diff %v", i, outs[i].MaxAbsDiff(want))
		}
	}
}

func TestKernelErrorFormatAndUnwrap(t *testing.T) {
	cause := errors.New("index out of range")
	e := &KernelError{Kernel: "spmm", Target: CPU, Worker: 2, Tile: 1, Part: 0, Value: cause}
	if !errors.Is(e, cause) {
		t.Fatal("KernelError should unwrap an error panic value")
	}
	msg := e.Error()
	for _, want := range []string{"spmm/cpu", "worker 2", "tile 1", "partition 0", "index out of range"} {
		if !strings.Contains(msg, want) {
			t.Fatalf("message %q missing %q", msg, want)
		}
	}
	bare := &KernelError{Kernel: "sddmm", Target: GPU, Worker: 3, Tile: -1, Part: -1, Value: "boom"}
	if m := bare.Error(); strings.Contains(m, "tile") || strings.Contains(m, "partition") {
		t.Fatalf("unscoped error should omit tile/partition: %q", m)
	}
	if bare.Unwrap() != nil {
		t.Fatal("non-error panic value should unwrap to nil")
	}
}
