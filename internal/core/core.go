// Package core implements the paper's primary contribution: the generalized
// SpMM and SDDMM sparse templates that, fused with user-defined functions
// (UDFs) and feature dimension schedules (FDS), form FeatGraph's kernels.
//
// A kernel is built once per (graph, UDF, FDS, options) tuple — the analogue
// of the paper's per-topology compilation, whose cost is amortized over the
// hundreds of epochs of a training run — and then executed many times:
//
//	k, err := core.BuildSpMM(adj, udf, inputs, core.AggSum, fds, opts)
//	stats, err := k.Run(out)
//
// The templates own the coarse-grained graph traversal optimizations
// (§III-C): 1D graph partitioning and feature dimension tiling on CPU,
// row-per-block/feature-across-threads parallelization, tree reduction and
// hybrid degree partitioning on the simulated GPU, and Hilbert-curve edge
// traversal for edge-wise computations. The fine-grained UDF optimizations
// come from the FDS. Both fast-path (pattern-recognized) and generic
// (compiled-expression) lowerings produce identical results.
package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"featgraph/internal/admission"
	"featgraph/internal/cudasim"
	"featgraph/internal/expr"
	"featgraph/internal/faultinject"
	"featgraph/internal/sparse"
	"featgraph/internal/telemetry"
	"featgraph/internal/tensor"
)

// Target selects the execution backend.
type Target int

// Execution targets.
const (
	// CPU runs multi-threaded host code with cache-oriented partitioning.
	CPU Target = iota
	// GPU runs on the cudasim simulated device with CUDA-style scheduling.
	GPU
)

func (t Target) String() string {
	if t == CPU {
		return "cpu"
	}
	return "gpu"
}

// AggOp is the commutative aggregation applied across a vertex's incoming
// messages by the SpMM template.
type AggOp int

// Aggregation operators. Vertices with no in-edges aggregate to zero for
// every operator (DGL's convention).
const (
	AggSum AggOp = iota
	AggMax
	AggMin
	AggMean
)

func (a AggOp) String() string {
	switch a {
	case AggSum:
		return "sum"
	case AggMax:
		return "max"
	case AggMin:
		return "min"
	case AggMean:
		return "mean"
	}
	return fmt.Sprintf("AggOp(%d)", int(a))
}

// identity returns the aggregation identity element.
func (a AggOp) identity() float32 {
	switch a {
	case AggMax:
		return float32(math.Inf(-1))
	case AggMin:
		return float32(math.Inf(1))
	default:
		return 0
	}
}

// Options carries the coarse-grained scheduling parameters of the sparse
// templates — the template half of the design space the paper's grid
// search tunes (number of graph partitions, number of CUDA blocks, ...).
type Options struct {
	Target Target

	// NumThreads is the CPU worker count; 0 or 1 means single-threaded.
	// Threads work collectively on one graph partition at a time to avoid
	// LLC contention (§IV-A).
	NumThreads int
	// GraphPartitions is the number of 1D source-vertex partitions on
	// CPU; 0 or 1 disables graph partitioning.
	GraphPartitions int
	// Hilbert enables Hilbert-curve edge traversal for CPU SDDMM.
	Hilbert bool

	// Device is the simulated GPU; nil uses a process-wide default.
	Device *cudasim.Device
	// NumBlocks is the CUDA grid size; 0 derives it from the workload
	// (rows for SpMM, edge groups for SDDMM).
	NumBlocks int
	// ThreadsPerBlock is the CUDA block size; 0 derives it from the
	// feature tile length.
	ThreadsPerBlock int
	// HybridThreshold enables hybrid degree partitioning on GPU: source
	// vertices with out-degree >= the threshold are staged through shared
	// memory. 0 disables hybrid partitioning.
	HybridThreshold int32

	// CheckNumerics scans the output for NaN/±Inf after every successful
	// run and fails it with a *NumericError naming the first offending
	// vertex/edge and feature. The scan costs one pass over the output.
	CheckNumerics bool
	// Metrics enables telemetry recording for this kernel's runs even when
	// the process-wide switch (telemetry.SetEnabled) is off. RunStats
	// fields are populated either way; this only controls the shared
	// counters and histograms behind featgraph.Metrics().
	Metrics bool
	// NoFallback disables the transparent CPU retry a GPU-target kernel
	// performs when the device build or run fails.
	NoFallback bool

	// Admission is the serving governor this kernel's runs pass through;
	// nil uses the process-wide admission.Default(). The governor applies
	// concurrency/memory admission control, deadline-aware queueing, and
	// (when configured) the stall watchdog.
	Admission *admission.Governor
	// Deadline bounds each run end to end: RunCtx derives a per-run
	// deadline context, the governor rejects queued runs that cannot meet
	// it, and workers observe it like any cancellation. 0 means no
	// per-run deadline (the caller's ctx still applies).
	Deadline time.Duration
	// Retries is how many extra attempts a failed run gets on retryable
	// errors (stall, recovered worker panic, numeric fault), with jittered
	// exponential backoff between attempts. 0 disables retries.
	Retries int
	// BreakerThreshold tunes the GPU circuit breaker: the number of
	// consecutive device failures that open it. 0 uses
	// admission.DefaultBreakerThreshold; negative disables the breaker.
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker routes straight to CPU
	// before half-open probing; 0 uses admission.DefaultBreakerCooldown.
	BreakerCooldown time.Duration

	// LegacySched runs CPU kernels on the pre-engine scheduler: fresh
	// goroutines per (tile, partition) phase with a uniform contiguous row
	// split and per-run scratch allocation. It exists as the ablation
	// baseline for the persistent engine (see engine.go and featbench's
	// perf experiment); behavior and results are identical, only the
	// dispatch strategy differs.
	LegacySched bool
}

// RunStats reports per-run execution statistics. SimCycles is nonzero only
// for GPU runs; see the cudasim package for the cost model.
type RunStats struct {
	SimCycles uint64

	// Duration is the wall-clock time of the run, populated on every
	// completed RunCtx regardless of telemetry settings.
	Duration time.Duration
	// EdgesProcessed counts edge traversals the run performed. Each
	// feature tile re-traverses the topology, so an untiled run reports
	// nnz and a T-tile run reports T x nnz. GPU runs report the nominal
	// traversal count of the launched grid.
	EdgesProcessed uint64
	// ChunksStolen counts engine chunks executed by pool helpers rather
	// than the submitting goroutine — the work-stealing imbalance signal.
	// Zero under Options.LegacySched and on the GPU path.
	ChunksStolen uint64

	// Fallback reports that the GPU target failed to build or run and the
	// result was produced by the CPU path instead (graceful degradation).
	Fallback bool
	// FallbackReason is the GPU failure that triggered the fallback.
	FallbackReason string

	// Queued is how long the run waited for admission before executing
	// (zero when admitted immediately).
	Queued time.Duration
	// Retries is how many failed attempts preceded this result; 0 means
	// the first attempt succeeded.
	Retries int
	// BreakerState is the GPU circuit breaker's state after the run
	// ("closed", "open", "half-open"); empty for kernels without a
	// breaker (CPU targets, or BreakerThreshold < 0).
	BreakerState string
}

var (
	defaultDeviceOnce sync.Once
	defaultDevice     *cudasim.Device
)

// device resolves the simulated device for a GPU kernel.
func (o *Options) device() *cudasim.Device {
	if o.Device != nil {
		return o.Device
	}
	defaultDeviceOnce.Do(func() {
		defaultDevice = cudasim.NewDevice(cudasim.Config{})
	})
	return defaultDevice
}

// validateBindings checks that every placeholder indexed by a special
// variable has a leading dimension compatible with the graph: Src indexes
// source vertices (adjacency columns), Dst destination vertices (rows),
// and EID edge ids (nnz). The dimensions are passed explicitly rather
// than as a CSR because sharded kernels validate against the global graph
// while executing a local shard.
func validateBindings(numRows, numCols int, nnz int64, udf *expr.UDF, inputs []*tensor.Tensor) error {
	var err error
	walkLoads(udf.Body, func(l *expr.Load) {
		if err != nil {
			return
		}
		sp, ok := l.Idx[0].(expr.Special)
		if !ok {
			return
		}
		dim0 := inputs[l.P.ID()].Dim(0)
		switch sp {
		case expr.Src:
			if dim0 != numCols {
				err = fmt.Errorf("core: %s indexed by src has %d rows, graph has %d source vertices", l.P.Name, dim0, numCols)
			}
		case expr.Dst:
			if dim0 != numRows {
				err = fmt.Errorf("core: %s indexed by dst has %d rows, graph has %d destination vertices", l.P.Name, dim0, numRows)
			}
		case expr.EID:
			if int64(dim0) < nnz {
				err = fmt.Errorf("core: %s indexed by eid has %d rows, graph has %d edges", l.P.Name, dim0, nnz)
			}
		}
	})
	return err
}

func walkLoads(e expr.Expr, f func(*expr.Load)) {
	switch n := e.(type) {
	case *expr.Load:
		f(n)
	case *expr.Unary:
		walkLoads(n.A, f)
	case *expr.Binary:
		walkLoads(n.A, f)
		walkLoads(n.B, f)
	case *expr.Reduce:
		walkLoads(n.Body, f)
	}
}

// runControl coordinates one kernel execution across its worker goroutines:
// cooperative cancellation (from the caller's context) and first-error-wins
// failure collection (from recovered worker panics). Once stopped — by
// cancellation or by a failing worker — the remaining workers observe stop()
// at their next poll, abandon their work, and drain; the dispatcher
// (workpool phase or parallelFor) still waits for all of them, so no
// goroutine outlives the Run call. A runControl is resettable so pooled run
// states reuse one across executions without allocating.
type runControl struct {
	ctx     context.Context // nil only for the zero value before reset
	done    <-chan struct{} // ctx.Done(); may be nil
	stopped atomic.Bool
	mu      sync.Mutex
	err     error
	// quit releases faultinject stalls in sibling workers once the run has
	// failed — a stalled worker would otherwise hold the whole run behind
	// the injected delay. Allocated per run only while faults are armed,
	// so the steady-state path stays allocation-free. Workers read the
	// field without mu, which is safe because it is only written by reset
	// (before workers start); fail closes it but never reassigns it, with
	// quitClosed (under mu) guarding the close-once.
	quit       chan struct{}
	quitClosed bool
}

func newRunControl(ctx context.Context) *runControl {
	rc := &runControl{}
	rc.reset(ctx)
	return rc
}

// reset rearms rc for a new execution under ctx. It must not be called
// while workers of a previous execution are still running.
func (rc *runControl) reset(ctx context.Context) {
	rc.ctx = ctx
	rc.done = ctx.Done()
	rc.stopped.Store(false)
	rc.quit = nil
	if faultinject.Enabled() {
		rc.quit = make(chan struct{})
	}
	rc.mu.Lock()
	rc.err = nil
	rc.quitClosed = false
	rc.mu.Unlock()
}

// stop reports whether workers should abandon their remaining work, either
// because the context was cancelled or because another worker failed. The
// fast path is one atomic load, so per-chunk polling is affordable.
func (rc *runControl) stop() bool {
	if rc.stopped.Load() {
		return true
	}
	if rc.done != nil {
		select {
		case <-rc.done:
			rc.stopped.Store(true)
			return true
		default:
		}
	}
	return false
}

// fail records err and stops the run; the first recorded error wins and
// releases any sibling worker stalled at a faultinject site.
func (rc *runControl) fail(err error) {
	if err == nil {
		return
	}
	rc.mu.Lock()
	if rc.err == nil {
		rc.err = err
	}
	if rc.quit != nil && !rc.quitClosed {
		close(rc.quit)
		rc.quitClosed = true
	}
	rc.mu.Unlock()
	rc.stopped.Store(true)
}

// verdict returns the run's outcome: a recorded worker error first, the
// context's error second, nil for a clean run. On any non-nil verdict the
// output buffer's contents are undefined.
func (rc *runControl) verdict() error {
	rc.mu.Lock()
	err := rc.err
	rc.mu.Unlock()
	if err != nil {
		return err
	}
	return rc.ctx.Err()
}

// workerSite locates a parallelFor call in the kernel schedule for
// KernelError reporting. Tile/part are -1 outside tile/partition loops.
type workerSite struct {
	kernel string
	target Target
	tile   int
	part   int
}

// parallelFor splits [0, n) into numWorkers contiguous chunks and runs body
// on each concurrently under rc's supervision: a panicking worker is
// recovered into a *KernelError recorded on rc (first error wins) and the
// remaining workers drain. numWorkers <= 1 runs inline with the same panic
// isolation. Bodies poll rc.stop() between row/edge chunks so cancellation
// and failures stop the run promptly.
func parallelFor(rc *runControl, site workerSite, n, numWorkers int, body func(worker, lo, hi int)) {
	guarded := func(w, lo, hi int) {
		defer func() {
			if r := recover(); r != nil {
				if telemetry.Enabled() {
					mRecoveredPanics.Inc()
				}
				rc.fail(&KernelError{
					Kernel: site.kernel, Target: site.target,
					Worker: w, Tile: site.tile, Part: site.part, Value: r,
				})
			}
		}()
		body(w, lo, hi)
	}
	if numWorkers <= 1 || n <= 1 {
		guarded(0, 0, n)
		return
	}
	if numWorkers > n {
		numWorkers = n
	}
	var wg sync.WaitGroup
	for w := 0; w < numWorkers; w++ {
		lo := w * n / numWorkers
		hi := (w + 1) * n / numWorkers
		if lo == hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			guarded(w, lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
}

// cancelChunk is how many rows or edges a worker processes between
// cancellation polls: small enough to stop promptly, large enough to keep
// the poll off the inner loops.
const cancelChunk = 64

// ctxDone reports whether err is the run context's cancellation rather than
// a device or kernel failure — cancellations must not trigger CPU fallback.
func ctxDone(ctx context.Context, err error) bool {
	return ctx.Err() != nil || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// aggInto folds msg into acc elementwise with op. Mean accumulates like sum
// and is normalized at the end of the run.
func aggInto(op AggOp, acc, msg []float32) {
	switch op {
	case AggSum, AggMean:
		for i := range acc {
			acc[i] += msg[i]
		}
	case AggMax:
		for i := range acc {
			if msg[i] > acc[i] {
				acc[i] = msg[i]
			}
		}
	case AggMin:
		for i := range acc {
			if msg[i] < acc[i] {
				acc[i] = msg[i]
			}
		}
	}
}

// finalizeAgg fixes up aggregate rows after all edges are processed:
// isolated vertices become zero for every operator, and mean divides by
// the in-degree.
func finalizeAgg(op AggOp, out *tensor.Tensor, adj *sparse.CSR, lo, hi int) {
	for r := lo; r < hi; r++ {
		deg := adj.RowPtr[r+1] - adj.RowPtr[r]
		row := out.Row(r)
		if deg == 0 {
			clear(row)
			continue
		}
		if op == AggMean {
			inv := 1 / float32(deg)
			for i := range row {
				row[i] *= inv
			}
		}
	}
}
