package core

import (
	"context"
	"errors"

	"featgraph/internal/admission"
	"featgraph/internal/cudasim"
	"featgraph/internal/tensor"
	"featgraph/internal/workpool"
)

// The simulated-GPU fused attention path: row-per-block grid-strided
// launches mirroring the CPU schedule (one launch for the forward, one per
// backward phase), with each block streaming its rows' scores through
// slot-local scratch — the register/shared-memory residency FusedMM-style
// kernels rely on. Exponentials charge CostExp, the special-function-unit
// latency. Failures degrade to the CPU path under the kernel's circuit
// breaker exactly like the template kernels.

// fusedAttnGPU holds the device and the reusable launch-state freelist.
// Both directions share the type; each built kernel owns its own instance.
type fusedAttnGPU struct {
	dev    *cudasim.Device
	states chan *fusedAttnGPULaunch
}

func buildFusedAttnGPU(opts Options) *fusedAttnGPU {
	return &fusedAttnGPU{dev: opts.device(), states: make(chan *fusedAttnGPULaunch, runStatePoolCap)}
}

// fusedAttnGPULaunch is one launch's worth of reusable state. Exactly one
// of fwd/bwd is set, fixing which block body the kernel closure routes to.
type fusedAttnGPULaunch struct {
	fwd *FusedAttnKernel
	bwd *FusedAttnBwdKernel

	out        *tensor.Tensor
	gridBlocks int
	phase2     bool
	kernel     func(*cudasim.Block)
	scratch    []*fusedAttnScratch // per-slot score (fwd) / dα (bwd) buffers
	dEdge      []float32           // bwd: the inter-phase dE buffer
	beacon     admission.Beacon
}

func (st *fusedAttnGPULaunch) block(b *cudasim.Block) {
	slot := b.Slot()
	sc := st.scratch[slot]
	if sc == nil {
		n := 0
		if st.fwd != nil {
			n = st.fwd.maxInDeg
		} else {
			n = st.bwd.maxInDeg
		}
		sc = &fusedAttnScratch{scores: make([]float32, n)}
		st.scratch[slot] = sc
	}
	if st.fwd != nil {
		st.fwd.gpuBlock(b, st.out, st.gridBlocks, sc)
		return
	}
	st.bwd.gpuBlock(b, st.out, st.gridBlocks, st.phase2, st.dEdge, sc)
}

func (k *FusedAttnKernel) newGPULaunch() *fusedAttnGPULaunch {
	st := &fusedAttnGPULaunch{fwd: k, scratch: make([]*fusedAttnScratch, workpool.Default().MaxRunners())}
	st.kernel = st.block
	return st
}

func (k *FusedAttnBwdKernel) newGPULaunch() *fusedAttnGPULaunch {
	st := &fusedAttnGPULaunch{bwd: k, scratch: make([]*fusedAttnScratch, workpool.Default().MaxRunners()),
		dEdge: make([]float32, k.adj.NNZ())}
	st.kernel = st.block
	return st
}

func (g *fusedAttnGPU) getLaunch(newState func() *fusedAttnGPULaunch) *fusedAttnGPULaunch {
	select {
	case st := <-g.states:
		return st
	default:
		return newState()
	}
}

func (g *fusedAttnGPU) putLaunch(st *fusedAttnGPULaunch) {
	st.out = nil
	select {
	case g.states <- st:
	default:
	}
}

// fusedAttnLaunchDims resolves the grid: row-per-block up to the row count,
// threads covering the feature dimension.
func fusedAttnLaunchDims(opts Options, rows, d int) (blocks, threads int) {
	blocks = opts.NumBlocks
	if blocks <= 0 {
		blocks = rows
	}
	blocks = max(min(blocks, rows), 1)
	threads = opts.ThreadsPerBlock
	if threads <= 0 {
		threads = min(nextPow2(d), 256)
	}
	return blocks, min(threads, 1024)
}

// runGPU executes the fused forward as one device launch.
func (k *FusedAttnKernel) runGPU(ctx context.Context, out *tensor.Tensor) (RunStats, error) {
	g := k.gpu
	st := g.getLaunch(k.newGPULaunch)
	defer g.putLaunch(st)
	if gov := admission.Resolve(k.opts.Admission); gov.WatchdogEnabled() {
		wctx, cancel := context.WithCancelCause(ctx)
		defer cancel(nil)
		defer gov.Watch(cancel, &st.beacon, "fusedattn/gpu")()
		ctx = wctx
	}
	st.out = out
	out.Zero()
	blocks, threads := fusedAttnLaunchDims(k.opts, k.adj.NumRows, k.d)
	st.gridBlocks = blocks
	stats, err := g.dev.LaunchCtx(ctx, cudasim.LaunchConfig{Blocks: blocks, ThreadsPerBlock: threads, Progress: st.beacon.Counter()}, st.kernel)
	if err != nil {
		err = stallCause(ctx, err)
		var kpe *cudasim.KernelPanicError
		if errors.As(err, &kpe) {
			err = &KernelError{Kernel: "fusedattn", Target: GPU, Worker: kpe.Block, Tile: -1, Part: -1, Value: kpe.Value}
		}
		return RunStats{SimCycles: stats.SimCycles}, err
	}
	return RunStats{SimCycles: stats.SimCycles, EdgesProcessed: uint64(k.adj.NNZ())}, nil
}

// gpuBlock runs the fused forward for the block's grid-strided rows.
func (k *FusedAttnKernel) gpuBlock(b *cudasim.Block, out *tensor.Tensor, gridBlocks int, sc *fusedAttnScratch) {
	adj := k.adj
	d := k.d
	xd, xs := k.x.Data(), k.x.RowStride()
	yd, ys := k.y.Data(), k.y.RowStride()
	ad, dd := k.alpha.Data(), k.deriv.Data()
	odata, ostride := out.Data(), out.RowStride()
	scale, slope := k.cfg.Scale, k.cfg.NegSlope

	for v := b.Idx(); v < adj.NumRows; v += gridBlocks {
		if b.Cancelled() {
			return
		}
		lo, hi := int(adj.RowPtr[v]), int(adj.RowPtr[v+1])
		deg := hi - lo
		if deg == 0 {
			continue
		}
		yrow := yd[v*ys : v*ys+d]
		b.ChargeParallel(d, cudasim.CostGlobal) // destination feature row
		scores := sc.scores[:deg]
		runMax := negInf32
		for j := 0; j < deg; j++ {
			p := lo + j
			u := int(adj.ColIdx[p])
			xrow := xd[u*xs : u*xs+d]
			var dot float32
			for f, yf := range yrow {
				dot += xrow[f] * yf
			}
			s := dot
			drv := scale
			if dot <= 0 {
				s *= slope
				drv *= slope
			}
			s *= scale
			scores[j] = s
			dd[adj.EID[p]] = drv
			if s > runMax {
				runMax = s
			}
			b.ChargeParallel(d, cudasim.CostGlobal+2*cudasim.CostFLOP) // x row + dot
			b.ChargeTreeReduce(d)                                      // dot reduction
			b.Charge(2*cudasim.CostFLOP + cudasim.CostGlobal)          // score, max, deriv write
		}
		for j := range scores {
			scores[j] -= runMax
		}
		ExpSliceF32(scores)
		var runSum float32
		for _, e := range scores {
			runSum += e
		}
		inv := 1 / runSum
		orow := odata[v*ostride : v*ostride+d]
		for j := 0; j < deg; j++ {
			p := lo + j
			a := scores[j] * inv
			ad[adj.EID[p]] = a
			u := int(adj.ColIdx[p])
			xrow := xd[u*xs : u*xs+d]
			for f := range orow {
				orow[f] += a * xrow[f]
			}
			b.Charge(cudasim.CostExp + cudasim.CostFLOP + cudasim.CostGlobal)
			b.ChargeParallel(d, cudasim.CostGlobal+2*cudasim.CostFLOP)
		}
		b.ChargeParallel(d, cudasim.CostGlobal) // output row write
	}
}

// runGPU executes the fused backward as two device launches — destination
// rows, then (after the launch boundary, the device-side barrier) source
// rows of the transpose reading the dE buffer the first launch filled.
func (k *FusedAttnBwdKernel) runGPU(ctx context.Context, out *tensor.Tensor) (RunStats, error) {
	g := k.gpu
	st := g.getLaunch(k.newGPULaunch)
	defer g.putLaunch(st)
	if gov := admission.Resolve(k.opts.Admission); gov.WatchdogEnabled() {
		wctx, cancel := context.WithCancelCause(ctx)
		defer cancel(nil)
		defer gov.Watch(cancel, &st.beacon, "fusedattn.bwd/gpu")()
		ctx = wctx
	}
	st.out = out
	out.Zero()
	var total uint64
	for phase := 0; phase < 2; phase++ {
		st.phase2 = phase == 1
		rows := k.adj.NumRows
		if st.phase2 {
			rows = k.adjT.NumRows
		}
		blocks, threads := fusedAttnLaunchDims(k.opts, rows, k.d)
		st.gridBlocks = blocks
		stats, err := g.dev.LaunchCtx(ctx, cudasim.LaunchConfig{Blocks: blocks, ThreadsPerBlock: threads, Progress: st.beacon.Counter()}, st.kernel)
		total += stats.SimCycles
		if err != nil {
			err = stallCause(ctx, err)
			var kpe *cudasim.KernelPanicError
			if errors.As(err, &kpe) {
				err = &KernelError{Kernel: "fusedattn.bwd", Target: GPU, Worker: kpe.Block, Tile: -1, Part: phase, Value: kpe.Value}
			}
			return RunStats{SimCycles: total}, err
		}
	}
	return RunStats{SimCycles: total, EdgesProcessed: 2 * uint64(k.adj.NNZ())}, nil
}

// gpuBlock runs one backward phase for the block's grid-strided rows.
func (k *FusedAttnBwdKernel) gpuBlock(b *cudasim.Block, out *tensor.Tensor, gridBlocks int, phase2 bool, dEdge []float32, sc *fusedAttnScratch) {
	d := k.d
	if phase2 {
		adjT := k.adjT
		yd, ys := k.y.Data(), k.y.RowStride()
		gd, gs := k.dout.Data(), k.dout.RowStride()
		ad := k.alpha.Data()
		odata, ostride := out.Data(), out.RowStride()
		for u := b.Idx(); u < adjT.NumRows; u += gridBlocks {
			if b.Cancelled() {
				return
			}
			lo, hi := int(adjT.RowPtr[u]), int(adjT.RowPtr[u+1])
			if lo == hi {
				continue
			}
			dxrow := odata[u*ostride : u*ostride+d]
			for p := lo; p < hi; p++ {
				e := adjT.EID[p]
				v := int(adjT.ColIdx[p])
				a, de := ad[e], dEdge[e]
				gro := gd[v*gs : v*gs+d]
				yrow := yd[v*ys : v*ys+d]
				for f := range dxrow {
					dxrow[f] += a*gro[f] + de*yrow[f]
				}
				b.Charge(2 * cudasim.CostGlobal) // α and dE loads
				b.ChargeParallel(d, 2*cudasim.CostGlobal+4*cudasim.CostFLOP)
			}
			b.ChargeParallel(d, cudasim.CostGlobal)
		}
		return
	}

	adj := k.adj
	xd, xs := k.x.Data(), k.x.RowStride()
	gd, gs := k.dout.Data(), k.dout.RowStride()
	ad, dd := k.alpha.Data(), k.deriv.Data()
	odata, ostride := out.Data(), out.RowStride()
	base := adj.NumCols
	for v := b.Idx(); v < adj.NumRows; v += gridBlocks {
		if b.Cancelled() {
			return
		}
		lo, hi := int(adj.RowPtr[v]), int(adj.RowPtr[v+1])
		deg := hi - lo
		if deg == 0 {
			continue
		}
		gro := gd[v*gs : v*gs+d]
		b.ChargeParallel(d, cudasim.CostGlobal)
		dA := sc.scores[:deg]
		var rowDot float64
		for j := 0; j < deg; j++ {
			p := lo + j
			u := int(adj.ColIdx[p])
			xrow := xd[u*xs : u*xs+d]
			var s float32
			for f, gf := range gro {
				s += xrow[f] * gf
			}
			dA[j] = s
			rowDot += float64(ad[adj.EID[p]] * s)
			b.ChargeParallel(d, cudasim.CostGlobal+2*cudasim.CostFLOP)
			b.ChargeTreeReduce(d)
			b.Charge(cudasim.CostGlobal + 2*cudasim.CostFLOP)
		}
		rd := float32(rowDot)
		dyrow := odata[(base+v)*ostride : (base+v)*ostride+d]
		for j := 0; j < deg; j++ {
			p := lo + j
			e := adj.EID[p]
			de := ad[e] * (dA[j] - rd) * dd[e]
			dEdge[e] = de
			u := int(adj.ColIdx[p])
			xrow := xd[u*xs : u*xs+d]
			for f := range dyrow {
				dyrow[f] += de * xrow[f]
			}
			b.Charge(2*cudasim.CostGlobal + 3*cudasim.CostFLOP + cudasim.CostGlobal)
			b.ChargeParallel(d, cudasim.CostGlobal+2*cudasim.CostFLOP)
		}
		b.ChargeParallel(d, cudasim.CostGlobal)
	}
}
