package core

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"featgraph/internal/cudasim"
	"featgraph/internal/expr"
	"featgraph/internal/graphgen"
	"featgraph/internal/schedule"
	"featgraph/internal/sparse"
	"featgraph/internal/tensor"
)

func TestNumChunksFor(t *testing.T) {
	cases := []struct {
		threads, rows, nnz int
		want               int
	}{
		{1, 1000, 10000, 1},    // single-threaded: no point splitting
		{0, 1000, 10000, 1},    // unset threads behave like 1
		{4, 1, 10, 1},          // one row can't be split
		{4, 1000, 100, 4},      // tiny edge count: floor at threads
		{4, 8, 1 << 20, 8},     // chunk count never exceeds rows
		{4, 1000, 1 << 20, 16}, // plenty of edges: threads*chunksPerRunner
	}
	for _, c := range cases {
		if got := numChunksFor(c.threads, c.rows, c.nnz); got != c.want {
			t.Errorf("numChunksFor(%d, %d, %d) = %d, want %d", c.threads, c.rows, c.nnz, got, c.want)
		}
	}
}

func TestEdgeBalancedChunksCoverAllRows(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	adj := graphgen.TwoTier(rng, 4000, 0.1, 80, 3).Transpose()
	nnz := adj.NNZ()
	maxDeg := 0
	for r := 0; r < adj.NumRows; r++ {
		maxDeg = max(maxDeg, adj.RowDegree(r))
	}
	for _, nchunks := range []int{1, 3, 16, 64} {
		chunks := edgeBalancedChunks(adj, nchunks)
		next := 0
		for _, c := range chunks {
			if c.Lo != next || c.Hi <= c.Lo {
				t.Fatalf("nchunks=%d: chunk %+v not contiguous from %d", nchunks, c, next)
			}
			next = c.Hi
			edges := int(adj.RowPtr[c.Hi] - adj.RowPtr[c.Lo])
			// Balance: no chunk exceeds its even share by more than one
			// row's worth of edges (a single row is indivisible).
			if limit := nnz/nchunks + maxDeg; edges > limit {
				t.Errorf("nchunks=%d: chunk %+v has %d edges, limit %d", nchunks, c, edges, limit)
			}
		}
		if next != adj.NumRows {
			t.Fatalf("nchunks=%d: chunks end at %d, want %d", nchunks, next, adj.NumRows)
		}
	}
}

func TestUniformChunksCoverRange(t *testing.T) {
	for _, c := range []struct{ n, nchunks int }{{0, 4}, {1, 4}, {7, 3}, {100, 7}, {5, 5}, {3, 8}} {
		chunks := uniformChunks(c.n, c.nchunks)
		next := 0
		for _, r := range chunks {
			if r.Lo != next || r.Hi <= r.Lo {
				t.Fatalf("uniformChunks(%d,%d): chunk %+v not contiguous from %d", c.n, c.nchunks, r, next)
			}
			next = r.Hi
		}
		if next != c.n {
			t.Fatalf("uniformChunks(%d,%d): chunks end at %d", c.n, c.nchunks, next)
		}
	}
}

// TestEngineMatchesLegacySched checks the persistent engine reproduces the
// legacy per-run-goroutine scheduler bit for bit: chunking changes which
// worker computes a row, never the per-row arithmetic order.
func TestEngineMatchesLegacySched(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	const n, d = 300, 24
	adj := graphgen.TwoTier(rng, n, 0.2, 30, 3).Transpose()
	x := randTensor(rng, n, d)
	e1 := randTensor(rng, adj.NNZ(), 1)
	x8 := randTensor(rng, n, 8)
	w := randTensor(rng, 8, d)

	opts := Options{Target: CPU, NumThreads: 4, GraphPartitions: 4}
	legacy := opts
	legacy.LegacySched = true

	spmmWorkloads := []struct {
		name   string
		udf    *expr.UDF
		inputs []*tensor.Tensor
	}{
		{"copy-src", expr.CopySrc(n, d), []*tensor.Tensor{x}},
		{"src-mul-edge-scalar", expr.SrcMulEdgeScalar(n, adj.NNZ(), d), []*tensor.Tensor{x, e1}},
		{"mlp", expr.MLPMessage(n, 8, d), []*tensor.Tensor{x8, w}},
	}
	for _, wl := range spmmWorkloads {
		for _, agg := range []AggOp{AggSum, AggMax, AggMean} {
			fds := schedule.New().Split(wl.udf.OutAxes[0], 8)
			got := runSpMMConfig(t, adj, wl.udf, wl.inputs, agg, fds, opts)
			want := runSpMMConfig(t, adj, wl.udf, wl.inputs, agg, fds, legacy)
			for i, v := range got.Data() {
				if v != want.Data()[i] {
					t.Fatalf("spmm %s/%s: engine diverges from legacy at %d: %v != %v", wl.name, agg, i, v, want.Data()[i])
				}
			}
		}
	}

	sddmmWorkloads := []struct {
		name   string
		udf    *expr.UDF
		inputs []*tensor.Tensor
	}{
		{"dot", expr.DotAttention(n, d), []*tensor.Tensor{x}},
		{"add-src-dst", expr.AddSrcDst(n, d), []*tensor.Tensor{x}},
	}
	for _, wl := range sddmmWorkloads {
		run := func(o Options) *tensor.Tensor {
			k, err := BuildSDDMM(adj, wl.udf, wl.inputs, schedule.New().Split(wl.udf.OutAxes[0], 8), o)
			if err != nil {
				t.Fatal(err)
			}
			rows, cols := k.OutShape()
			out := tensor.New(rows, cols)
			if _, err := k.Run(out); err != nil {
				t.Fatal(err)
			}
			return out
		}
		got, want := run(opts), run(legacy)
		for i, v := range got.Data() {
			if v != want.Data()[i] {
				t.Fatalf("sddmm %s: engine diverges from legacy at %d: %v != %v", wl.name, i, v, want.Data()[i])
			}
		}
	}
}

// TestRunCtxZeroAllocSteadyState asserts the headline engine property: after
// the first run, repeated RunCtx calls on a built kernel allocate nothing —
// CPU and simulated GPU alike.
func TestRunCtxZeroAllocSteadyState(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	const n, d = 512, 16
	adj := sparse.Random(rng, n, n, 6)
	x := randTensor(rng, n, d)
	dev := cudasim.NewDevice(cudasim.Config{})

	type kernelCase struct {
		name string
		run  func() error
	}
	var cases []kernelCase

	addSpMM := func(name string, opts Options) {
		udf := expr.CopySrc(n, d)
		k, err := BuildSpMM(adj, udf, []*tensor.Tensor{x}, AggSum, schedule.New().Split(udf.OutAxes[0], 8), opts)
		if err != nil {
			t.Fatal(err)
		}
		out := tensor.New(n, d)
		cases = append(cases, kernelCase{name, func() error { _, err := k.Run(out); return err }})
	}
	addSDDMM := func(name string, opts Options) {
		k, err := BuildSDDMM(adj, expr.DotAttention(n, d), []*tensor.Tensor{x}, nil, opts)
		if err != nil {
			t.Fatal(err)
		}
		out := tensor.New(adj.NNZ(), 1)
		cases = append(cases, kernelCase{name, func() error { _, err := k.Run(out); return err }})
	}
	addSpMM("spmm-cpu", Options{Target: CPU, NumThreads: 4, GraphPartitions: 4})
	addSpMM("spmm-gpu", Options{Target: GPU, Device: dev})
	addSDDMM("sddmm-cpu", Options{Target: CPU, NumThreads: 4})
	addSDDMM("sddmm-gpu", Options{Target: GPU, Device: dev})

	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			// First run may finish lazy per-slot scratch; steady state
			// starts after it.
			if err := c.run(); err != nil {
				t.Fatal(err)
			}
			allocs := testing.AllocsPerRun(10, func() {
				if err := c.run(); err != nil {
					t.Fatal(err)
				}
			})
			if allocs != 0 {
				t.Errorf("%s: %v allocs per steady-state run, want 0", c.name, allocs)
			}
		})
	}
}

// TestConcurrentKernelsSharePool runs distinct kernels simultaneously on the
// shared worker pool and checks every run's output; under -race this also
// exercises the pool's handoff and the per-kernel run-state freelists.
func TestConcurrentKernelsSharePool(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	const n, d = 256, 8
	adj := sparse.Random(rng, n, n, 5)
	x := randTensor(rng, n, d)

	udf := expr.CopySrc(n, d)
	want, err := ReferenceSpMM(adj, udf, []*tensor.Tensor{x}, AggSum)
	if err != nil {
		t.Fatal(err)
	}
	attWant := tensor.New(adj.NNZ(), 1)
	{
		ref, err := ReferenceSDDMM(adj, expr.DotAttention(n, d), []*tensor.Tensor{x})
		if err != nil {
			t.Fatal(err)
		}
		attWant = ref
	}

	const goroutines, reps = 6, 10
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for gi := 0; gi < goroutines; gi++ {
		wg.Add(1)
		go func(gi int) {
			defer wg.Done()
			opts := Options{Target: CPU, NumThreads: 1 + gi%4, GraphPartitions: gi % 3}
			if gi%2 == 0 {
				k, err := BuildSpMM(adj, expr.CopySrc(n, d), []*tensor.Tensor{x}, AggSum, nil, opts)
				if err != nil {
					errs <- err
					return
				}
				out := tensor.New(n, d)
				for r := 0; r < reps; r++ {
					if _, err := k.Run(out); err != nil {
						errs <- err
						return
					}
					if !out.AllClose(want, 1e-5) {
						errs <- fmt.Errorf("goroutine %d rep %d: spmm output diverged", gi, r)
						return
					}
				}
			} else {
				k, err := BuildSDDMM(adj, expr.DotAttention(n, d), []*tensor.Tensor{x}, nil, opts)
				if err != nil {
					errs <- err
					return
				}
				out := tensor.New(adj.NNZ(), 1)
				for r := 0; r < reps; r++ {
					if _, err := k.Run(out); err != nil {
						errs <- err
						return
					}
					if !out.AllClose(attWant, 1e-5) {
						errs <- fmt.Errorf("goroutine %d rep %d: sddmm output diverged", gi, r)
						return
					}
				}
			}
		}(gi)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
