// The fused attention backward: the softmax Jacobian folded into the
// dScore/dX/dY passes, consuming the alpha and deriv vectors the forward
// produced instead of replaying any of the three stages.
//
// With s the raw scores, α = softmax_row(s), out_v = Σ α_e x_u, and an
// upstream gradient dOut, the chain is, per destination row v:
//
//	dα_e = dOut_v · x_u                       (per in-edge)
//	ds_e = α_e (dα_e − Σ_{e'∈row} α_e' dα_e') (softmax Jacobian)
//	dE_e = ds_e · deriv_e                      (score-transform chain)
//	dY_v = Σ_e dE_e · x_u
//	dX_u = α_e dOut_v + dE_e · y_v  summed over u's out-edges
//
// dY and dE are per-destination-row reductions (phase 1, parallel over adj
// rows); dX is a per-source-row reduction (phase 2, parallel over the
// transpose's rows, reading the dE buffer phase 1 filled). Splitting by
// traversal direction is what keeps both phases scatter-free: each output
// row is written by exactly one chunk, so no atomics and no data races.
//
// The kernel produces one [NumCols+NumRows, d] tensor — rows [0, NumCols)
// are dX, rows [NumCols, NumCols+NumRows) are dY — so it fits the
// single-output core.Kernel interface and travels through dgl's plan cache
// like any template kernel.
package core

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"featgraph/internal/admission"
	"featgraph/internal/faultinject"
	"featgraph/internal/partition"
	"featgraph/internal/sparse"
	"featgraph/internal/telemetry"
	"featgraph/internal/tensor"
	"featgraph/internal/workpool"
)

// FusedAttnBwdKernel is the built fused backward kernel.
type FusedAttnBwdKernel struct {
	adj, adjT *sparse.CSR
	x, y      *tensor.Tensor // the forward's feature inputs
	alpha     *tensor.Tensor // [≥m, 1] softmax probabilities from the forward
	deriv     *tensor.Tensor // [≥m, 1] dscore/ddot factors from the forward
	dout      *tensor.Tensor // [NumRows, d] upstream gradient, staged by the caller
	opts      Options
	d         int
	maxInDeg  int

	chunksAdj  []partition.Range // phase 1: destination rows of adj
	chunksAdjT []partition.Range // phase 2: source rows of adjT
	states     chan *fusedAttnBwdRunState

	gpu         *fusedAttnGPU
	breaker     *admission.Breaker
	memEstimate int64

	lastMu sync.Mutex
	last   RunStats
}

// BuildFusedAttentionBwd builds the fused backward kernel. adjT must be the
// transpose of adj with edge ids preserved (sparse.CSR.Transpose keeps
// them). x, y, alpha and deriv are the same tensors the forward kernel was
// built with; dout is the caller's staging buffer for the upstream
// gradient, read on every run.
func BuildFusedAttentionBwd(adj, adjT *sparse.CSR, x, y, alpha, deriv, dout *tensor.Tensor, opts Options) (*FusedAttnBwdKernel, error) {
	tracing := telemetry.TraceActive()
	var buildStart time.Time
	if tracing {
		buildStart = time.Now()
	}
	if err := adj.Validate(); err != nil {
		return nil, fmt.Errorf("core: invalid adjacency: %w", err)
	}
	if adjT.NumRows != adj.NumCols || adjT.NumCols != adj.NumRows || adjT.NNZ() != adj.NNZ() {
		return nil, fmt.Errorf("core: fused attention transpose shape %dx%d/%d, want %dx%d/%d",
			adjT.NumRows, adjT.NumCols, adjT.NNZ(), adj.NumCols, adj.NumRows, adj.NNZ())
	}
	d := x.Dim(1)
	if d < 1 || x.Dim(0) != adj.NumCols || y.Dim(0) != adj.NumRows || y.Dim(1) != d {
		return nil, fmt.Errorf("core: fused attention backward feature shapes x%v y%v, want [%d, d] [%d, d]",
			x.Shape(), y.Shape(), adj.NumCols, adj.NumRows)
	}
	m := adj.NNZ()
	if alpha.Len() < m || deriv.Len() < m {
		return nil, fmt.Errorf("core: fused attention edge buffers hold %d/%d values, graph has %d edges", alpha.Len(), deriv.Len(), m)
	}
	if dout.Dim(0) != adj.NumRows || dout.Len() != adj.NumRows*d {
		return nil, fmt.Errorf("core: fused attention dOut shape %v, want [%d, %d]", dout.Shape(), adj.NumRows, d)
	}
	if opts.Target != CPU && opts.Target != GPU {
		return nil, fmt.Errorf("core: unknown target %d", opts.Target)
	}
	k := &FusedAttnBwdKernel{adj: adj, adjT: adjT, x: x, y: y, alpha: alpha, deriv: deriv, dout: dout, opts: opts, d: d}
	k.maxInDeg = maxRowDegree(adj)
	threads := max(opts.NumThreads, 1)
	k.chunksAdj = edgeBalancedChunks(adj, numChunksFor(threads, adj.NumRows, m))
	k.chunksAdjT = edgeBalancedChunks(adjT, numChunksFor(threads, adjT.NumRows, m))
	k.states = make(chan *fusedAttnBwdRunState, runStatePoolCap)

	if opts.Target == GPU {
		k.gpu = buildFusedAttnGPU(k.opts)
		if opts.BreakerThreshold >= 0 {
			k.breaker = admission.NewBreaker(opts.BreakerThreshold, opts.BreakerCooldown, fusedattnMetrics.breakerHook())
		}
	}

	// Memory estimate: the [NumCols+NumRows, d] gradient surface, the
	// per-run dE edge buffer, and one state's per-slot dα scratch.
	k.memEstimate = 4 * (int64(adj.NumCols+adj.NumRows)*int64(d) + int64(m) +
		int64(scratchSlots(opts.NumThreads))*int64(k.maxInDeg))

	k.states <- k.newRunState()
	if k.gpu != nil {
		k.gpu.states <- k.newGPULaunch()
	}
	if tracing {
		telemetry.RecordSpan("fusedattn.bwd.build", 0, buildStart, time.Since(buildStart), "rows", int64(adj.NumRows), "nnz", int64(m), 2)
	}
	return k, nil
}

// OutShape returns the stacked gradient shape: rows [0, NumCols) hold dX,
// rows [NumCols, NumCols+NumRows) hold dY.
func (k *FusedAttnBwdKernel) OutShape() (rows, cols int) { return k.adj.NumCols + k.adj.NumRows, k.d }

// Pattern identifies the fused backward kernel.
func (k *FusedAttnBwdKernel) Pattern() string { return "fusedattn.bwd" }

// Describe returns a one-line description of the built kernel.
func (k *FusedAttnBwdKernel) Describe() string {
	return fmt.Sprintf("fusedattn.bwd{target:%s rows:%d nnz:%d d:%d maxdeg:%d}",
		k.opts.Target, k.adj.NumRows, k.adj.NNZ(), k.d, k.maxInDeg)
}

// LastStats returns the statistics of the most recently completed RunCtx.
func (k *FusedAttnBwdKernel) LastStats() RunStats {
	k.lastMu.Lock()
	defer k.lastMu.Unlock()
	return k.last
}

// Run executes the kernel into out (Run = RunCtx under context.Background()).
func (k *FusedAttnBwdKernel) Run(out *tensor.Tensor) (RunStats, error) {
	return k.RunCtx(context.Background(), out)
}

// RunCtx executes the fused backward into out ([NumCols+NumRows, d]) under
// the same governed semantics as the forward kernel. The alpha/deriv
// buffers must hold the most recent forward's values and dout the upstream
// gradient.
func (k *FusedAttnBwdKernel) RunCtx(ctx context.Context, out *tensor.Tensor) (RunStats, error) {
	wantRows := k.adj.NumCols + k.adj.NumRows
	if out.Dim(0) != wantRows || out.Len() != wantRows*k.d {
		return RunStats{}, fmt.Errorf("core: fused attention backward output shape %v, want [%d, %d]", out.Shape(), wantRows, k.d)
	}
	if err := ctx.Err(); err != nil {
		return RunStats{}, err
	}
	gov := admission.Resolve(k.opts.Admission)
	if k.opts.Deadline > 0 {
		dctx, cancel := context.WithTimeout(ctx, k.opts.Deadline)
		defer cancel()
		ctx = dctx
	}
	tk, err := gov.Admit(ctx, k.memEstimate)
	if err != nil {
		return RunStats{}, err
	}
	stats, err := k.runAttempts(ctx, out, tk.Queued())
	gov.Release(tk)
	return stats, err
}

func (k *FusedAttnBwdKernel) runAttempts(ctx context.Context, out *tensor.Tensor, queued time.Duration) (RunStats, error) {
	for attempt := 0; ; attempt++ {
		stats, err := k.runAttempt(ctx, out, queued, attempt)
		if err == nil || attempt >= k.opts.Retries || !retryable(err) || ctx.Err() != nil {
			return stats, err
		}
		admission.RecordRetry()
		if !admission.SleepBackoff(ctx, attempt) {
			return stats, err
		}
	}
}

func (k *FusedAttnBwdKernel) runAttempt(ctx context.Context, out *tensor.Tensor, queued time.Duration, attempt int) (RunStats, error) {
	metricsOn := k.opts.Metrics || telemetry.Enabled()
	tracing := telemetry.TraceActive()
	start := time.Now()
	stats := RunStats{Queued: queued, Retries: attempt}
	if k.opts.Target == GPU && k.breaker.Allow() {
		gstats, err := k.runGPU(ctx, out)
		if err == nil {
			k.breaker.RecordSuccess()
			gstats.Queued, gstats.Retries = queued, attempt
			stats = gstats
		} else {
			if ctxDone(ctx, err) {
				k.breaker.RecordCancel()
				return RunStats{}, err
			}
			k.breaker.RecordFailure()
			if k.opts.NoFallback {
				return RunStats{}, err
			}
			stats = RunStats{Queued: queued, Retries: attempt}
			if cpuErr := k.runCPU(ctx, out, &stats); cpuErr != nil {
				return RunStats{}, fmt.Errorf("core: gpu run failed (%v); cpu fallback failed: %w", err, cpuErr)
			}
			stats.Fallback = true
			stats.FallbackReason = err.Error()
			if metricsOn {
				fusedattnMetrics.recordFallback(false)
			}
			if tracing {
				telemetry.RecordInstant("fusedattn.bwd.fallback", 0, "run_stage", 1, 1)
			}
		}
	} else {
		if err := k.runCPU(ctx, out, &stats); err != nil {
			return RunStats{}, err
		}
		if k.opts.Target == GPU {
			stats.Fallback = true
			stats.FallbackReason = "gpu circuit breaker open"
			if metricsOn {
				fusedattnMetrics.recordBreakerReroute()
			}
			if tracing {
				telemetry.RecordInstant("fusedattn.bwd.fallback", 0, "breaker_open", 1, 1)
			}
		}
	}
	if k.breaker != nil {
		stats.BreakerState = k.breaker.State().String()
	}
	if k.opts.CheckNumerics {
		if err := checkNumerics("fusedattn.bwd", out); err != nil {
			return stats, err
		}
	}
	finishRun("fusedattn.bwd.run", fusedattnMetrics, k.opts.Target, &k.lastMu, &k.last, start, &stats, metricsOn, tracing)
	return stats, nil
}

// fusedAttnBwdRunState is one execution's worth of reusable engine state.
// dEdge is the run-private per-edge dE buffer bridging the two phases:
// phase 1 writes each edge exactly once (edges partition by destination
// row), phase 2 reads after the pool barrier, so it is race-free without
// atomics.
type fusedAttnBwdRunState struct {
	k    *FusedAttnBwdKernel
	rc   runControl
	job  workpool.Job
	site workerSite

	out    *tensor.Tensor
	phase2 bool
	edges  atomic.Uint64
	stolen atomic.Uint64
	beacon admission.Beacon

	dEdge   []float32
	scratch []*fusedAttnScratch // per-slot dα row buffers
}

func (k *FusedAttnBwdKernel) newRunState() *fusedAttnBwdRunState {
	st := &fusedAttnBwdRunState{k: k, site: workerSite{kernel: "fusedattn.bwd", target: CPU, tile: -1, part: -1}}
	st.dEdge = make([]float32, k.adj.NNZ())
	st.scratch = make([]*fusedAttnScratch, scratchSlots(k.opts.NumThreads))
	for w := range st.scratch {
		st.scratch[w] = &fusedAttnScratch{scores: make([]float32, k.maxInDeg)}
	}
	st.job.Body = guard(&st.rc, &st.site, st.runChunk)
	st.job.Stop = st.rc.stop
	st.job.Progress = st.beacon.Counter()
	return st
}

func (k *FusedAttnBwdKernel) getRunState() *fusedAttnBwdRunState {
	select {
	case st := <-k.states:
		return st
	default:
		return k.newRunState()
	}
}

func (k *FusedAttnBwdKernel) putRunState(st *fusedAttnBwdRunState) {
	st.out = nil
	select {
	case k.states <- st:
	default:
	}
}

// runChunk processes one row chunk of the active phase.
func (st *fusedAttnBwdRunState) runChunk(slot, ci int) {
	k := st.k
	if slot != 0 {
		st.stolen.Add(1)
	}
	faultinject.Hit(faultinject.SiteFusedAttnCPUWorker, st.rc.done, st.rc.quit)
	if st.phase2 {
		r := k.chunksAdjT[ci]
		st.edges.Add(uint64(k.adjT.RowPtr[r.Hi] - k.adjT.RowPtr[r.Lo]))
		for lo := r.Lo; lo < r.Hi; lo += cancelChunk {
			if st.rc.stop() {
				return
			}
			k.bwdSrcRows(st.out, st.dEdge, lo, min(lo+cancelChunk, r.Hi))
		}
		ostride := st.out.RowStride()
		odata := st.out.Data()
		faultinject.CorruptFloats(faultinject.SiteFusedAttnCPUOutput, odata[r.Lo*ostride:r.Hi*ostride])
		return
	}
	r := k.chunksAdj[ci]
	st.edges.Add(uint64(k.adj.RowPtr[r.Hi] - k.adj.RowPtr[r.Lo]))
	sc := st.scratch[slot]
	for lo := r.Lo; lo < r.Hi; lo += cancelChunk {
		if st.rc.stop() {
			return
		}
		k.bwdDstRows(st.out, st.dEdge, sc, lo, min(lo+cancelChunk, r.Hi))
	}
	ostride := st.out.RowStride()
	odata := st.out.Data()
	base := k.adj.NumCols
	faultinject.CorruptFloats(faultinject.SiteFusedAttnCPUOutput, odata[(base+r.Lo)*ostride:(base+r.Hi)*ostride])
}

func (k *FusedAttnBwdKernel) runCPU(ctx context.Context, out *tensor.Tensor, stats *RunStats) error {
	if k.opts.LegacySched {
		err := k.runCPULegacy(ctx, out)
		if err == nil {
			stats.EdgesProcessed = 2 * uint64(k.adj.NNZ())
		}
		return err
	}
	return k.runCPUEngine(ctx, out, stats)
}

// runCPUEngine executes the two backward phases on the persistent engine.
// The pool run between them is the barrier that makes phase 2's dEdge reads
// see phase 1's writes.
func (k *FusedAttnBwdKernel) runCPUEngine(ctx context.Context, out *tensor.Tensor, stats *RunStats) error {
	threads := max(k.opts.NumThreads, 1)
	pool := workpool.Default()
	st := k.getRunState()
	defer k.putRunState(st)
	if gov := admission.Resolve(k.opts.Admission); gov.WatchdogEnabled() {
		wctx, cancel := context.WithCancelCause(ctx)
		defer cancel(nil)
		defer gov.Watch(cancel, &st.beacon, "fusedattn.bwd/cpu-engine")()
		ctx = wctx
	}
	st.rc.reset(ctx)
	st.out = out
	st.edges.Store(0)
	st.stolen.Store(0)
	tracing := telemetry.TraceActive()
	out.Zero()

	var phaseStart time.Time
	st.phase2 = false
	st.site.part = 0
	if tracing {
		phaseStart = time.Now()
	}
	pool.Run(&st.job, len(k.chunksAdj), threads)
	if tracing {
		telemetry.RecordSpan("fusedattn.bwd.phase", 0, phaseStart, time.Since(phaseStart), "phase", 1, "chunks", int64(len(k.chunksAdj)), 2)
	}
	if !st.rc.stop() {
		st.phase2 = true
		st.site.part = 1
		if tracing {
			phaseStart = time.Now()
		}
		pool.Run(&st.job, len(k.chunksAdjT), threads)
		if tracing {
			telemetry.RecordSpan("fusedattn.bwd.phase", 0, phaseStart, time.Since(phaseStart), "phase", 2, "chunks", int64(len(k.chunksAdjT)), 2)
		}
	}
	stats.EdgesProcessed = st.edges.Load()
	stats.ChunksStolen = st.stolen.Load()
	return stallCause(ctx, st.rc.verdict())
}

// runCPULegacy runs both phases on the pre-engine scheduler.
func (k *FusedAttnBwdKernel) runCPULegacy(ctx context.Context, out *tensor.Tensor) error {
	rc := newRunControl(ctx)
	threads := max(k.opts.NumThreads, 1)
	out.Zero()
	dEdge := make([]float32, k.adj.NNZ())
	scratch := make([]*fusedAttnScratch, threads)
	for w := range scratch {
		scratch[w] = &fusedAttnScratch{scores: make([]float32, k.maxInDeg)}
	}
	site := workerSite{kernel: "fusedattn.bwd", target: CPU, tile: -1, part: 0}
	parallelFor(rc, site, k.adj.NumRows, threads, func(w, rlo, rhi int) {
		faultinject.Hit(faultinject.SiteFusedAttnCPUWorker, rc.done, rc.quit)
		for lo := rlo; lo < rhi; lo += cancelChunk {
			if rc.stop() {
				return
			}
			k.bwdDstRows(out, dEdge, scratch[w], lo, min(lo+cancelChunk, rhi))
		}
	})
	if !rc.stop() {
		site.part = 1
		parallelFor(rc, site, k.adjT.NumRows, threads, func(_, rlo, rhi int) {
			faultinject.Hit(faultinject.SiteFusedAttnCPUWorker, rc.done, rc.quit)
			for lo := rlo; lo < rhi; lo += cancelChunk {
				if rc.stop() {
					return
				}
				k.bwdSrcRows(out, dEdge, lo, min(lo+cancelChunk, rhi))
			}
		})
	}
	return rc.verdict()
}

// bwdDstRows runs phase 1 for destination rows [rlo, rhi): per-edge dα,
// the softmax Jacobian's row reduction, dE, and the dY accumulation. Writes
// dE into dEdge[eid] and dY into out rows NumCols+v.
func (k *FusedAttnBwdKernel) bwdDstRows(out *tensor.Tensor, dEdge []float32, sc *fusedAttnScratch, rlo, rhi int) {
	if k.d%8 == 0 {
		k.bwdDstRowsW8(out, dEdge, sc, rlo, rhi)
		return
	}
	adj := k.adj
	d := k.d
	xd, xs := k.x.Data(), k.x.RowStride()
	gd, gs := k.dout.Data(), k.dout.RowStride()
	ad, dd := k.alpha.Data(), k.deriv.Data()
	odata, ostride := out.Data(), out.RowStride()
	base := adj.NumCols

	for v := rlo; v < rhi; v++ {
		lo, hi := int(adj.RowPtr[v]), int(adj.RowPtr[v+1])
		deg := hi - lo
		if deg == 0 {
			continue
		}
		gro := gd[v*gs : v*gs+d]
		dA := sc.scores[:deg]

		// dα_e = dOut_v · x_u, and the Jacobian's row dot Σ α·dα. The
		// reduction accumulates in float64 to match the 3-pass edge
		// softmax's backward (which the oracle diffs against bitwise-ly
		// tight tolerances).
		var rowDot float64
		for j := 0; j < deg; j++ {
			p := lo + j
			u := int(adj.ColIdx[p])
			xrow := xd[u*xs : u*xs+d]
			// Unrolled with independent accumulators — see fwdRows.
			var s0, s1, s2, s3 float32
			f := 0
			for ; f+4 <= d; f += 4 {
				s0 += xrow[f] * gro[f]
				s1 += xrow[f+1] * gro[f+1]
				s2 += xrow[f+2] * gro[f+2]
				s3 += xrow[f+3] * gro[f+3]
			}
			for ; f < d; f++ {
				s0 += xrow[f] * gro[f]
			}
			s := (s0 + s1) + (s2 + s3)
			dA[j] = s
			rowDot += float64(ad[adj.EID[p]] * s)
		}
		rd := float32(rowDot)

		dyrow := odata[(base+v)*ostride : (base+v)*ostride+d]
		for j := 0; j < deg; j++ {
			p := lo + j
			e := adj.EID[p]
			de := ad[e] * (dA[j] - rd) * dd[e]
			dEdge[e] = de
			u := int(adj.ColIdx[p])
			xrow := xd[u*xs : u*xs+d]
			for f := range dyrow {
				dyrow[f] += de * xrow[f]
			}
		}
	}
}

// bwdSrcRows runs phase 2 for source rows [rlo, rhi) of the transpose:
// dX_u = Σ over u's out-edges of α_e·dOut_v + dE_e·y_v, into out rows u.
func (k *FusedAttnBwdKernel) bwdSrcRows(out *tensor.Tensor, dEdge []float32, rlo, rhi int) {
	if k.d%8 == 0 {
		k.bwdSrcRowsW8(out, dEdge, rlo, rhi)
		return
	}
	adjT := k.adjT
	d := k.d
	yd, ys := k.y.Data(), k.y.RowStride()
	gd, gs := k.dout.Data(), k.dout.RowStride()
	ad := k.alpha.Data()
	odata, ostride := out.Data(), out.RowStride()

	for u := rlo; u < rhi; u++ {
		lo, hi := int(adjT.RowPtr[u]), int(adjT.RowPtr[u+1])
		if lo == hi {
			continue
		}
		dxrow := odata[u*ostride : u*ostride+d]
		for p := lo; p < hi; p++ {
			e := adjT.EID[p]
			v := int(adjT.ColIdx[p])
			a, de := ad[e], dEdge[e]
			gro := gd[v*gs : v*gs+d]
			yrow := yd[v*ys : v*ys+d]
			for f := range dxrow {
				dxrow[f] += a*gro[f] + de*yrow[f]
			}
		}
	}
}

// bwdDstRowsW8 is bwdDstRows instantiated for multiple-of-eight feature
// widths — fixed 8-wide blocks through array pointers, the same
// width-class specialization as the forward's fwdRowsW8.
func (k *FusedAttnBwdKernel) bwdDstRowsW8(out *tensor.Tensor, dEdge []float32, sc *fusedAttnScratch, rlo, rhi int) {
	adj := k.adj
	d := k.d
	xd, xs := k.x.Data(), k.x.RowStride()
	gd, gs := k.dout.Data(), k.dout.RowStride()
	ad, dd := k.alpha.Data(), k.deriv.Data()
	odata, ostride := out.Data(), out.RowStride()
	base := adj.NumCols

	for v := rlo; v < rhi; v++ {
		lo, hi := int(adj.RowPtr[v]), int(adj.RowPtr[v+1])
		deg := hi - lo
		if deg == 0 {
			continue
		}
		gro := gd[v*gs : v*gs+d]
		dA := sc.scores[:deg]

		var rowDot float64
		for j := 0; j < deg; j++ {
			p := lo + j
			u := int(adj.ColIdx[p])
			xrow := xd[u*xs : u*xs+d]
			var s0, s1, s2, s3 float32
			for f := 0; f+8 <= d; f += 8 {
				xb := (*[8]float32)(xrow[f : f+8])
				gb := (*[8]float32)(gro[f : f+8])
				s0 += xb[0]*gb[0] + xb[4]*gb[4]
				s1 += xb[1]*gb[1] + xb[5]*gb[5]
				s2 += xb[2]*gb[2] + xb[6]*gb[6]
				s3 += xb[3]*gb[3] + xb[7]*gb[7]
			}
			s := (s0 + s1) + (s2 + s3)
			dA[j] = s
			rowDot += float64(ad[adj.EID[p]] * s)
		}
		rd := float32(rowDot)

		// Fold the Jacobian and score-transform chain in place, then
		// accumulate each 8-wide dY block in registers across the in-edge
		// set — one store per block, no read-modify-write per edge.
		for j := 0; j < deg; j++ {
			e := adj.EID[lo+j]
			de := ad[e] * (dA[j] - rd) * dd[e]
			dA[j] = de
			dEdge[e] = de
		}
		dyrow := odata[(base+v)*ostride : (base+v)*ostride+d]
		for f := 0; f+8 <= d; f += 8 {
			ob := (*[8]float32)(dyrow[f : f+8])
			var a0, a1, a2, a3, a4, a5, a6, a7 float32
			for j := 0; j < deg; j++ {
				de := dA[j]
				xbase := int(adj.ColIdx[lo+j])*xs + f
				xb := (*[8]float32)(xd[xbase : xbase+8])
				a0 += de * xb[0]
				a1 += de * xb[1]
				a2 += de * xb[2]
				a3 += de * xb[3]
				a4 += de * xb[4]
				a5 += de * xb[5]
				a6 += de * xb[6]
				a7 += de * xb[7]
			}
			ob[0] += a0
			ob[1] += a1
			ob[2] += a2
			ob[3] += a3
			ob[4] += a4
			ob[5] += a5
			ob[6] += a6
			ob[7] += a7
		}
	}
}

// bwdSrcRowsW8 is bwdSrcRows instantiated for multiple-of-eight feature
// widths; see bwdDstRowsW8.
func (k *FusedAttnBwdKernel) bwdSrcRowsW8(out *tensor.Tensor, dEdge []float32, rlo, rhi int) {
	adjT := k.adjT
	d := k.d
	yd, ys := k.y.Data(), k.y.RowStride()
	gd, gs := k.dout.Data(), k.dout.RowStride()
	ad := k.alpha.Data()
	odata, ostride := out.Data(), out.RowStride()

	for u := rlo; u < rhi; u++ {
		lo, hi := int(adjT.RowPtr[u]), int(adjT.RowPtr[u+1])
		if lo == hi {
			continue
		}
		dxrow := odata[u*ostride : u*ostride+d]
		for f := 0; f+8 <= d; f += 8 {
			ob := (*[8]float32)(dxrow[f : f+8])
			var a0, a1, a2, a3, a4, a5, a6, a7 float32
			for p := lo; p < hi; p++ {
				e := adjT.EID[p]
				v := int(adjT.ColIdx[p])
				a, de := ad[e], dEdge[e]
				gbase := v*gs + f
				ybase := v*ys + f
				gb := (*[8]float32)(gd[gbase : gbase+8])
				yb := (*[8]float32)(yd[ybase : ybase+8])
				a0 += a*gb[0] + de*yb[0]
				a1 += a*gb[1] + de*yb[1]
				a2 += a*gb[2] + de*yb[2]
				a3 += a*gb[3] + de*yb[3]
				a4 += a*gb[4] + de*yb[4]
				a5 += a*gb[5] + de*yb[5]
				a6 += a*gb[6] + de*yb[6]
				a7 += a*gb[7] + de*yb[7]
			}
			ob[0] += a0
			ob[1] += a1
			ob[2] += a2
			ob[3] += a3
			ob[4] += a4
			ob[5] += a5
			ob[6] += a6
			ob[7] += a7
		}
	}
}
