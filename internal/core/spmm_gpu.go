package core

import (
	"context"
	"errors"
	"fmt"

	"featgraph/internal/admission"
	"featgraph/internal/codegen"
	"featgraph/internal/cudasim"
	"featgraph/internal/expr"
	"featgraph/internal/partition"
	"featgraph/internal/schedule"
	"featgraph/internal/sparse"
	"featgraph/internal/tensor"
	"featgraph/internal/workpool"
)

// spmmGPU holds the GPU-side schedule of an SpMM kernel: the vertex
// parallelization of Figure 7a (rows across blocks, feature dimension
// across the threads of a block) plus optional hybrid degree partitioning
// (§III-C3), where high-degree source vertices are staged through shared
// memory chunk by chunk.
type spmmGPU struct {
	dev      *cudasim.Device
	parts    []*gpuPart
	featPar  bool   // FDS bound the feature axis to thread.x
	bodyCost uint64 // simulated cycles per generic-UDF output element

	states chan *spmmGPULaunch // reusable launch-state freelist
}

// spmmGPULaunch is one GPU execution's worth of reusable state: the kernel
// closure handed to the device (created once), the per-launch dispatch
// parameters (set between launches; launches are synchronous), and host-side
// per-slot scratch keyed by cudasim.Block.Slot.
type spmmGPULaunch struct {
	k          *SpMMKernel
	out        *tensor.Tensor
	gp         *gpuPart
	tile       partition.Range
	gridBlocks int
	kernel     func(*cudasim.Block)
	scratch    []*gpuScratch
	// beacon is the stall watchdog's progress counter; the device ticks it
	// once per retired block via LaunchConfig.Progress.
	beacon admission.Beacon
}

// gpuScratch is per-runner-slot evaluation state for GPU blocks: the
// analogue of spmmScratch on the device side. Allocated on a slot's first
// block, reused for every later block and launch on that slot.
type gpuScratch struct {
	env *codegen.Env
	msg []float32
	tmp []float32
}

func (k *SpMMKernel) newGPULaunch() *spmmGPULaunch {
	st := &spmmGPULaunch{k: k, scratch: make([]*gpuScratch, workpool.Default().MaxRunners())}
	st.kernel = st.block
	return st
}

func (g *spmmGPU) getLaunch(k *SpMMKernel) *spmmGPULaunch {
	select {
	case st := <-g.states:
		return st
	default:
		return k.newGPULaunch()
	}
}

func (g *spmmGPU) putLaunch(st *spmmGPULaunch) {
	st.out = nil
	st.gp = nil
	select {
	case g.states <- st:
	default:
	}
}

// block runs one grid block, routing the slot's scratch to the kernel body.
func (st *spmmGPULaunch) block(b *cudasim.Block) {
	sc := st.scratch[b.Slot()]
	if sc == nil {
		sc = &gpuScratch{
			env: st.k.compiled.NewEnv(),
			msg: make([]float32, st.k.maxTile),
			tmp: make([]float32, st.k.tmpLen),
		}
		st.scratch[b.Slot()] = sc
	}
	st.k.gpuBlock(b, st.out, st.gp, st.tile, st.gridBlocks, sc)
}

// gpuPart is one column partition processed by one kernel launch. For
// staged parts, localColIdx rewrites each edge's source to its position in
// chunkCols so kernels can index the shared-memory staging buffer directly.
type gpuPart struct {
	csr         *sparse.CSR
	staged      bool
	chunkCols   []int32
	localColIdx []int32
}

func buildSpMMGPU(k *SpMMKernel, udf *expr.UDF, fds *schedule.FDS) (*spmmGPU, error) {
	g := &spmmGPU{
		dev:      k.opts.device(),
		bodyCost: codegen.EstimateCostPerElem(udf),
	}
	if r, ok := fds.Binding(udf.OutAxes[0]); ok && r == schedule.ThreadX {
		g.featPar = true
	}

	if k.opts.HybridThreshold > 0 {
		// Hybrid partitioning needs the staging of one chunk's feature
		// tile to fit in shared memory. Chunk width = shared floats /
		// widest feature tile.
		maxTile := 0
		for _, t := range k.tiles {
			maxTile = max(maxTile, t.Len())
		}
		chunkCols := g.dev.SharedFloats() / maxTile
		if chunkCols < 1 {
			return nil, fmt.Errorf("core: feature tile %d floats exceeds shared memory (%d floats); split the feature axis", maxTile, g.dev.SharedFloats())
		}
		plan, err := partition.Hybrid(k.adj, k.opts.HybridThreshold, chunkCols)
		if err != nil {
			return nil, err
		}
		g.parts = append(g.parts, &gpuPart{csr: plan.Parts[0]})
		for i, chunk := range plan.ChunkCols {
			part := plan.Parts[i+1]
			local := make([]int32, len(part.ColIdx))
			pos := make(map[int32]int32, len(chunk))
			for j, c := range chunk {
				pos[c] = int32(j)
			}
			for e, c := range part.ColIdx {
				local[e] = pos[c]
			}
			g.parts = append(g.parts, &gpuPart{csr: part, staged: true, chunkCols: chunk, localColIdx: local})
		}
	} else {
		g.parts = []*gpuPart{{csr: k.adj}}
	}
	g.states = make(chan *spmmGPULaunch, runStatePoolCap)
	return g, nil
}

// gpuLaunchDims resolves the grid for an SpMM launch: the paper sets the
// number of blocks to the number of adjacency rows (Figure 15 sweeps it),
// and threads cover the feature tile when the FDS binds it to thread.x.
func (k *SpMMKernel) gpuLaunchDims(tileLen int) (blocks, threads int) {
	blocks = k.opts.NumBlocks
	if blocks <= 0 {
		blocks = k.adj.NumRows
	}
	blocks = min(blocks, k.adj.NumRows)
	threads = k.opts.ThreadsPerBlock
	if threads <= 0 {
		if k.gpu.featPar {
			threads = min(nextPow2(tileLen), 256)
		} else {
			threads = 32
		}
	}
	return blocks, min(threads, 1024)
}

// runGPU executes the kernel on the simulated device, one launch per
// (feature tile × column partition), and reports accumulated simulated
// cycles. Device panics come back as *KernelErrors locating the failing
// block in the schedule; cancellation stops the launch loop and in-flight
// blocks (which poll Block.Cancelled between rows).
func (k *SpMMKernel) runGPU(ctx context.Context, out *tensor.Tensor) (RunStats, error) {
	g := k.gpu
	st := g.getLaunch(k)
	defer g.putLaunch(st)
	if gov := admission.Resolve(k.opts.Admission); gov.WatchdogEnabled() {
		wctx, cancel := context.WithCancelCause(ctx)
		defer cancel(nil)
		defer gov.Watch(cancel, &st.beacon, "spmm/gpu")()
		ctx = wctx
	}
	st.out = out
	out.Fill(k.agg.identity())
	var total uint64

	for ti, tile := range k.tiles {
		tileLen := tile.Len()
		blocks, threads := k.gpuLaunchDims(tileLen)
		st.tile = tile
		st.gridBlocks = blocks
		for pi, gp := range g.parts {
			st.gp = gp
			stats, err := g.dev.LaunchCtx(ctx, cudasim.LaunchConfig{Blocks: blocks, ThreadsPerBlock: threads, Progress: st.beacon.Counter()}, st.kernel)
			if err != nil {
				err = stallCause(ctx, err)
				var kpe *cudasim.KernelPanicError
				if errors.As(err, &kpe) {
					err = &KernelError{Kernel: "spmm", Target: GPU, Worker: kpe.Block, Tile: ti, Part: pi, Value: kpe.Value}
				}
				return RunStats{SimCycles: total}, err
			}
			total += stats.SimCycles
		}
	}
	finalizeAgg(k.agg, out, k.adj, 0, k.adj.NumRows)
	total += uint64(k.adj.NumRows) // epilogue pass
	// Nominal traversal count: the launched grid visits every edge once
	// per feature tile (no host-side chunk accounting on the device path).
	edges := uint64(k.adj.NNZ()) * uint64(len(k.tiles))
	return RunStats{SimCycles: total, EdgesProcessed: edges}, nil
}

// gpuBlock processes the rows assigned to one block (grid-strided) for one
// feature tile of one column partition.
func (k *SpMMKernel) gpuBlock(b *cudasim.Block, out *tensor.Tensor, gp *gpuPart, tile partition.Range, gridBlocks int, sc *gpuScratch) {
	lo, hi := tile.Lo, tile.Hi
	tileLen := hi - lo
	part := gp.csr
	odata, ostride := out.Data(), out.RowStride()

	// Per-element load cost for source features: shared after staging,
	// global otherwise.
	loadCost := uint64(cudasim.CostGlobal)

	// Stage the chunk's feature-tile rows into shared memory. Every block
	// pays the staging cost; the win comes from high-degree columns being
	// re-read many times at shared-memory cost (§III-C3). Staging data is
	// only usable when the UDF reads X tile-aligned (X width == outLen);
	// other patterns keep reading global memory but still traverse the
	// hybrid partition structure.
	var shared []float32
	stageUsable := k.match.X != nil &&
		(k.match.Pattern == codegen.CopySrc || k.match.Pattern == codegen.SrcMulEdgeScalar)
	if gp.staged && stageUsable {
		x := k.match.X
		shared = b.Shared(len(gp.chunkCols) * tileLen)
		xd, xs := x.Data(), x.RowStride()
		for j, c := range gp.chunkCols {
			copy(shared[j*tileLen:(j+1)*tileLen], xd[int(c)*xs+lo:int(c)*xs+hi])
		}
		b.ChargeParallel(len(gp.chunkCols)*tileLen, cudasim.CostGlobal+cudasim.CostShared)
		loadCost = cudasim.CostShared
	}
	useShared := gp.staged && stageUsable

	chargeFeat := func(cost uint64) {
		if k.gpu.featPar {
			b.ChargeParallel(tileLen, cost)
		} else {
			b.Charge(uint64(tileLen) * cost)
		}
	}

	switch {
	case k.match.Pattern == codegen.CopySrc && (k.agg == AggSum || k.agg == AggMean || k.agg == AggMax):
		x := k.match.X
		xd, xs := x.Data(), x.RowStride()
		isMax := k.agg == AggMax
		for r := b.Idx(); r < part.NumRows; r += gridBlocks {
			if b.Cancelled() {
				return
			}
			s, e := part.RowPtr[r], part.RowPtr[r+1]
			if s == e {
				continue
			}
			orow := odata[r*ostride+lo : r*ostride+hi]
			for p := s; p < e; p++ {
				var xrow []float32
				if useShared {
					j := int(gp.localColIdx[p])
					xrow = shared[j*tileLen : (j+1)*tileLen]
				} else {
					c := int(part.ColIdx[p])
					xrow = xd[c*xs+lo : c*xs+hi]
				}
				if isMax {
					for f := range orow {
						if xrow[f] > orow[f] {
							orow[f] = xrow[f]
						}
					}
				} else {
					for f := range orow {
						orow[f] += xrow[f]
					}
				}
				chargeFeat(loadCost + cudasim.CostFLOP)
			}
			chargeFeat(cudasim.CostGlobal) // write the accumulated row
		}

	case k.match.Pattern == codegen.SrcMulEdgeScalar && (k.agg == AggSum || k.agg == AggMean):
		x, ew := k.match.X, k.match.E
		xd, xs := x.Data(), x.RowStride()
		ed := ew.Data()
		for r := b.Idx(); r < part.NumRows; r += gridBlocks {
			if b.Cancelled() {
				return
			}
			s, e := part.RowPtr[r], part.RowPtr[r+1]
			if s == e {
				continue
			}
			orow := odata[r*ostride+lo : r*ostride+hi]
			for p := s; p < e; p++ {
				wgt := ed[part.EID[p]]
				var xrow []float32
				if useShared {
					j := int(gp.localColIdx[p])
					xrow = shared[j*tileLen : (j+1)*tileLen]
				} else {
					c := int(part.ColIdx[p])
					xrow = xd[c*xs+lo : c*xs+hi]
				}
				for f := range orow {
					orow[f] += wgt * xrow[f]
				}
				chargeFeat(loadCost + 2*cudasim.CostFLOP)
			}
			chargeFeat(cudasim.CostGlobal)
		}

	case k.match.Pattern == codegen.MLPSrcDst:
		// MLP aggregation with the multi-level parallelization of
		// Figure 9: rows across blocks, output features across threads,
		// with the combined feature vector computed once per edge.
		x, w := k.match.X, k.match.W
		xd, xs := x.Data(), x.RowStride()
		wd, ws := w.Data(), w.RowStride()
		d1 := w.Dim(0)
		tmp := sc.tmp[:d1]
		msg := sc.msg[:tileLen]
		for r := b.Idx(); r < part.NumRows; r += gridBlocks {
			if b.Cancelled() {
				return
			}
			s, e := part.RowPtr[r], part.RowPtr[r+1]
			if s == e {
				continue
			}
			orow := odata[r*ostride+lo : r*ostride+hi]
			xv := xd[r*xs : r*xs+d1]
			for p := s; p < e; p++ {
				c := int(part.ColIdx[p])
				xu := xd[c*xs : c*xs+d1]
				for kk := range tmp {
					tmp[kk] = xu[kk] + xv[kk]
				}
				b.ChargeParallel(d1, 2*cudasim.CostGlobal+cudasim.CostFLOP)
				clear(msg)
				for kk, a := range tmp {
					if a == 0 {
						continue
					}
					wrow := wd[kk*ws+lo : kk*ws+hi]
					for f := range msg {
						msg[f] += a * wrow[f]
					}
				}
				if k.match.Relu {
					for f := range msg {
						if msg[f] < 0 {
							msg[f] = 0
						}
					}
				}
				aggInto(k.agg, orow, msg)
				// d1 passes over the tile, features across threads.
				chargeFeat(uint64(d1) * (cudasim.CostGlobal + 2*cudasim.CostFLOP))
			}
			chargeFeat(cudasim.CostGlobal)
		}

	default:
		// Generic path: evaluate the compiled UDF per edge. The feature
		// tile is parallelized across threads when the FDS asks for it.
		env := sc.env
		msg := sc.msg[:tileLen]
		for r := b.Idx(); r < part.NumRows; r += gridBlocks {
			if b.Cancelled() {
				return
			}
			s, e := part.RowPtr[r], part.RowPtr[r+1]
			if s == e {
				continue
			}
			orow := odata[r*ostride+lo : r*ostride+hi]
			for p := s; p < e; p++ {
				k.compiled.Eval(env, part.ColIdx[p], int32(r), part.EID[p], msg, lo, hi)
				aggInto(k.agg, orow, msg)
				chargeFeat(k.gpu.bodyCost + cudasim.CostFLOP)
			}
			chargeFeat(cudasim.CostGlobal)
		}
	}
}

func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}
