package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"

	"featgraph/internal/admission"
	"featgraph/internal/expr"
	"featgraph/internal/faultinject"
	"featgraph/internal/sparse"
	"featgraph/internal/telemetry"
	"featgraph/internal/tensor"
)

// buildTestSDDMM builds a small dot-attention kernel for serving tests.
func buildTestSDDMM(t *testing.T, seed int64, opts Options) (*SDDMMKernel, *tensor.Tensor) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	const n, d = 32, 8
	adj := sparse.Random(rng, n, n, 4)
	x := randTensor(rng, n, d)
	k, err := BuildSDDMM(adj, expr.DotAttention(n, d), []*tensor.Tensor{x}, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	return k, tensor.New(adj.NNZ(), 1)
}

// TestWatchdogCancelsStalledCPURun: with every CPU worker stalled behind a
// long injected delay and a watchdog-armed governor, RunCtx must come back
// with a *StallError naming the engine site — not hang for the delay.
func TestWatchdogCancelsStalledCPURun(t *testing.T) {
	defer faultinject.Arm(faultinject.SiteSpMMCPUWorker,
		&faultinject.Fault{Kind: faultinject.Stall, Delay: 10 * time.Second})()
	gov := admission.NewGovernor(admission.Config{StallThreshold: 20 * time.Millisecond})
	k, out, _, _ := buildTestSpMM(t, 50, Options{Target: CPU, NumThreads: 2, Admission: gov})

	start := time.Now()
	_, err := k.RunCtx(context.Background(), out)
	var se *admission.StallError
	if !errors.As(err, &se) {
		t.Fatalf("stalled run returned %v, want *admission.StallError", err)
	}
	if se.Site != "spmm/cpu-engine" {
		t.Fatalf("StallError.Site = %q, want spmm/cpu-engine", se.Site)
	}
	if took := time.Since(start); took > 5*time.Second {
		t.Fatalf("watchdog took %v; the injected 10s stall was not cut short", took)
	}
}

// TestWatchdogStallOnGPUFallsBackToCPU: a stalled device launch looks like
// a device failure, so the watchdog trip must trigger the CPU fallback (and
// a breaker failure), not surface as a caller cancellation.
func TestWatchdogStallOnGPUFallsBackToCPU(t *testing.T) {
	defer faultinject.Arm(faultinject.SiteCudasimBlock,
		&faultinject.Fault{Kind: faultinject.Stall, Delay: 10 * time.Second})()
	gov := admission.NewGovernor(admission.Config{StallThreshold: 20 * time.Millisecond})
	k, out, _, _ := buildTestSpMM(t, 51, Options{Target: GPU, Admission: gov})

	stats, err := k.RunCtx(context.Background(), out)
	if err != nil {
		t.Fatalf("RunCtx: %v (want success via CPU fallback)", err)
	}
	if !stats.Fallback {
		t.Fatal("stalled GPU launch did not fall back to CPU")
	}
}

// TestDeadlineOptionEnforced: Options.Deadline bounds the whole run even
// when the caller's context has none.
func TestDeadlineOptionEnforced(t *testing.T) {
	defer faultinject.Arm(faultinject.SiteSpMMCPUWorker,
		&faultinject.Fault{Kind: faultinject.Stall, Delay: 10 * time.Second})()
	k, out, _, _ := buildTestSpMM(t, 52, Options{Target: CPU, NumThreads: 2, Deadline: 20 * time.Millisecond})

	start := time.Now()
	_, err := k.RunCtx(context.Background(), out)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("RunCtx = %v, want context.DeadlineExceeded", err)
	}
	if took := time.Since(start); took > 5*time.Second {
		t.Fatalf("deadline enforcement took %v", took)
	}
}

// TestRetryRecoversAfterTransientPanic: a MaxFires=1 panic fails exactly
// one attempt; with Retries the rerun must succeed and report the retry.
func TestRetryRecoversAfterTransientPanic(t *testing.T) {
	defer faultinject.Arm(faultinject.SiteSpMMCPUWorker,
		&faultinject.Fault{Kind: faultinject.Panic, MaxFires: 1})()
	k, out, adj, inputs := buildTestSpMM(t, 53, Options{Target: CPU, NumThreads: 2, Retries: 1})

	stats, err := k.RunCtx(context.Background(), out)
	if err != nil {
		t.Fatalf("RunCtx with retry: %v", err)
	}
	if stats.Retries != 1 {
		t.Fatalf("stats.Retries = %d, want 1", stats.Retries)
	}
	n := adj.NumRows
	dense := tensor.New(n, n)
	for r := 0; r < n; r++ {
		for p := adj.RowPtr[r]; p < adj.RowPtr[r+1]; p++ {
			dense.Set(1, r, int(adj.ColIdx[p]))
		}
	}
	want := tensor.MatMul(tensor.New(n, out.Dim(1)), dense, inputs[0])
	if !out.AllClose(want, 1e-4) {
		t.Fatalf("retried run produced wrong output: max diff %v", out.MaxAbsDiff(want))
	}
}

// TestRetriesExhaustedReturnsError: a persistent fault outlives the retry
// budget and the final error reaches the caller.
func TestRetriesExhaustedReturnsError(t *testing.T) {
	defer faultinject.Arm(faultinject.SiteSpMMCPUWorker,
		&faultinject.Fault{Kind: faultinject.Panic})()
	k, out, _, _ := buildTestSpMM(t, 54, Options{Target: CPU, NumThreads: 2, Retries: 2})
	_, err := k.RunCtx(context.Background(), out)
	var ke *KernelError
	if !errors.As(err, &ke) {
		t.Fatalf("RunCtx = %v, want *KernelError after retries exhausted", err)
	}
}

// TestBreakerOpensAndRecovers drives the full breaker lifecycle through
// real kernel runs and checks it end to end: consecutive device failures
// open it (telemetry transition counters), an open breaker reroutes runs
// straight to CPU (stats), and after the cooldown a half-open probe against
// a healed device closes it again.
func TestBreakerOpensAndRecovers(t *testing.T) {
	openBefore, _ := telemetry.Value(`featgraph_breaker_transitions_total{kernel="spmm",to="open"}`)
	closedBefore, _ := telemetry.Value(`featgraph_breaker_transitions_total{kernel="spmm",to="closed"}`)

	disarm := faultinject.Arm(faultinject.SiteCudasimBlock, &faultinject.Fault{Kind: faultinject.Panic})
	defer faultinject.Reset()
	k, out, _, _ := buildTestSpMM(t, 55, Options{
		Target: GPU, NoFallback: true,
		BreakerThreshold: 2, BreakerCooldown: 20 * time.Millisecond,
	})

	// Two consecutive device failures open the breaker.
	for i := 0; i < 2; i++ {
		var ke *KernelError
		if _, err := k.RunCtx(context.Background(), out); !errors.As(err, &ke) {
			t.Fatalf("failure %d: got %v, want *KernelError from the device", i, err)
		}
	}
	if openAfter, _ := telemetry.Value(`featgraph_breaker_transitions_total{kernel="spmm",to="open"}`); openAfter != openBefore+1 {
		t.Fatalf("breaker open transitions: %v -> %v, want exactly one more", openBefore, openAfter)
	}

	// Open breaker: runs are rerouted to CPU without a device attempt.
	stats, err := k.RunCtx(context.Background(), out)
	if err != nil {
		t.Fatalf("rerouted run: %v", err)
	}
	if !stats.Fallback || stats.FallbackReason != "gpu circuit breaker open" {
		t.Fatalf("stats = %+v, want breaker-open reroute", stats)
	}
	if stats.BreakerState != "open" {
		t.Fatalf("stats.BreakerState = %q, want open", stats.BreakerState)
	}

	// Heal the device, wait out the cooldown: the half-open probe succeeds
	// and closes the breaker.
	disarm()
	time.Sleep(30 * time.Millisecond)
	stats, err = k.RunCtx(context.Background(), out)
	if err != nil {
		t.Fatalf("probe run: %v", err)
	}
	if stats.Fallback {
		t.Fatal("probe run fell back to CPU; the half-open probe never reached the device")
	}
	if stats.BreakerState != "closed" {
		t.Fatalf("stats.BreakerState after recovery = %q, want closed", stats.BreakerState)
	}
	if closedAfter, _ := telemetry.Value(`featgraph_breaker_transitions_total{kernel="spmm",to="closed"}`); closedAfter != closedBefore+1 {
		t.Fatalf("breaker closed transitions: %v -> %v, want exactly one more", closedBefore, closedAfter)
	}
}

// TestAdmissionShedsConcurrentRuns: more concurrent runs than
// MaxConcurrent+MaxQueue must shed the excess with ErrOverloaded while
// every admitted run completes correctly.
func TestAdmissionShedsConcurrentRuns(t *testing.T) {
	defer faultinject.Arm(faultinject.SiteSpMMCPUWorker,
		&faultinject.Fault{Kind: faultinject.Stall, Delay: 30 * time.Millisecond})()
	gov := admission.NewGovernor(admission.Config{MaxConcurrent: 2, MaxQueue: 2})
	k, _, _, _ := buildTestSpMM(t, 56, Options{Target: CPU, NumThreads: 2, Admission: gov})

	const runs = 16
	var ok, shed, other int
	var mu sync.Mutex
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < runs; i++ {
		wg.Add(1)
		out := tensor.New(32, 8)
		go func() {
			defer wg.Done()
			<-start
			_, err := k.RunCtx(context.Background(), out)
			mu.Lock()
			defer mu.Unlock()
			switch {
			case err == nil:
				ok++
			case errors.Is(err, admission.ErrOverloaded):
				shed++
			default:
				other++
				t.Errorf("unexpected outcome: %v", err)
			}
		}()
	}
	close(start)
	wg.Wait()
	if ok == 0 || shed == 0 {
		t.Fatalf("ok=%d shed=%d: want both admission and shedding under 4x overload", ok, shed)
	}
	if gov.Inflight() != 0 || gov.QueueDepth() != 0 {
		t.Fatalf("governor leaked capacity: inflight=%d queued=%d", gov.Inflight(), gov.QueueDepth())
	}
}

// TestChaosServingUnderFaults is the serving layer's acceptance test: every
// fault site armed in rotation, 4x the admission limit in concurrent runs,
// deadlines on half of them, retries on. Whatever the interleaving, each
// run must end in one of the contracted outcomes — success, overload shed,
// stall, deadline, recovered panic, numeric fault — with no deadlock and no
// goroutine leak. Run it under -race.
func TestChaosServingUnderFaults(t *testing.T) {
	scenarios := []struct {
		site   string
		kind   faultinject.Kind
		target Target
		sddmm  bool
	}{
		{faultinject.SiteSpMMCPUWorker, faultinject.Panic, CPU, false},
		{faultinject.SiteSpMMCPUWorker, faultinject.Stall, CPU, false},
		{faultinject.SiteSpMMCPUOutput, faultinject.NaN, CPU, false},
		{faultinject.SiteSDDMMCPUWorker, faultinject.Panic, CPU, true},
		{faultinject.SiteSDDMMCPUWorker, faultinject.Stall, CPU, true},
		{faultinject.SiteSDDMMCPUOutput, faultinject.NaN, CPU, true},
		{faultinject.SiteCudasimBlock, faultinject.Panic, GPU, false},
		{faultinject.SiteCudasimBlock, faultinject.Stall, GPU, false},
	}

	// Warm the shared worker pool and device path so the goroutine baseline
	// below measures leaks, not lazy initialization.
	{
		k, out, _, _ := buildTestSpMM(t, 57, Options{Target: GPU, NumThreads: 2})
		if _, err := k.RunCtx(context.Background(), out); err != nil {
			t.Fatal(err)
		}
	}
	before := runtime.NumGoroutine()

	for _, sc := range scenarios {
		sc := sc
		t.Run(fmt.Sprintf("%s-%s", sc.site, sc.kind), func(t *testing.T) {
			defer faultinject.Arm(sc.site, &faultinject.Fault{
				Kind: sc.kind, Prob: 0.4, Seed: 9, Delay: 10 * time.Second,
			})()
			gov := admission.NewGovernor(admission.Config{
				MaxConcurrent: 4, MaxQueue: 4, StallThreshold: 25 * time.Millisecond,
			})
			opts := Options{
				Target: sc.target, NumThreads: 2, GraphPartitions: 2,
				Admission: gov, Retries: 1, CheckNumerics: true,
				BreakerThreshold: 3, BreakerCooldown: 10 * time.Millisecond,
			}
			var run func(ctx context.Context) (RunStats, error)
			if sc.sddmm {
				k, _ := buildTestSDDMM(t, 58, opts)
				run = func(ctx context.Context) (RunStats, error) {
					return k.RunCtx(ctx, tensor.New(k.adj.NNZ(), 1))
				}
			} else {
				k, _, _, _ := buildTestSpMM(t, 58, opts)
				run = func(ctx context.Context) (RunStats, error) {
					return k.RunCtx(ctx, tensor.New(32, 8))
				}
			}

			const runs = 16 // 4x MaxConcurrent
			var wg sync.WaitGroup
			start := make(chan struct{})
			for i := 0; i < runs; i++ {
				i := i
				wg.Add(1)
				go func() {
					defer wg.Done()
					<-start
					ctx := context.Background()
					if i%2 == 0 {
						dctx, cancel := context.WithTimeout(ctx, 500*time.Millisecond)
						defer cancel()
						ctx = dctx
					}
					_, err := run(ctx)
					var (
						se *admission.StallError
						ke *KernelError
						ne *NumericError
					)
					switch {
					case err == nil:
					case errors.Is(err, admission.ErrOverloaded):
					case errors.As(err, &se):
					case errors.Is(err, context.DeadlineExceeded):
					case errors.Is(err, context.Canceled):
					case errors.As(err, &ke):
					case errors.As(err, &ne):
					default:
						t.Errorf("run %d: uncontracted outcome %v", i, err)
					}
				}()
			}
			close(start)

			finished := make(chan struct{})
			go func() { wg.Wait(); close(finished) }()
			select {
			case <-finished:
			case <-time.After(60 * time.Second):
				t.Fatal("chaos runs deadlocked")
			}
			if gov.Inflight() != 0 || gov.QueueDepth() != 0 {
				t.Fatalf("governor leaked capacity: inflight=%d queued=%d", gov.Inflight(), gov.QueueDepth())
			}
		})
	}
	waitGoroutines(t, before)
}
