package core

import (
	"testing"

	"featgraph/internal/cudasim"
	"featgraph/internal/expr"
	"featgraph/internal/sparse"
	"featgraph/internal/tensor"
)

func emptyGraph(t *testing.T, n int) *sparse.CSR {
	t.Helper()
	csr, err := sparse.FromCOO(&sparse.COO{NumRows: n, NumCols: n})
	if err != nil {
		t.Fatal(err)
	}
	return csr
}

func TestSpMMEmptyGraph(t *testing.T) {
	adj := emptyGraph(t, 5)
	x := tensor.New(5, 4)
	x.Fill(3)
	for _, opts := range []Options{{Target: CPU}, {Target: GPU, Device: cudasim.NewDevice(cudasim.Config{NumSMs: 2})}} {
		k, err := BuildSpMM(adj, expr.CopySrc(5, 4), []*tensor.Tensor{x}, AggMax, nil, opts)
		if err != nil {
			t.Fatal(err)
		}
		out := tensor.New(5, 4)
		out.Fill(9)
		if _, err := k.Run(out); err != nil {
			t.Fatalf("%v: %v", opts.Target, err)
		}
		for _, v := range out.Data() {
			if v != 0 {
				t.Fatalf("%v: empty graph should aggregate to zeros, got %v", opts.Target, out.Data())
			}
		}
	}
}

func TestSDDMMEmptyGraph(t *testing.T) {
	adj := emptyGraph(t, 5)
	x := tensor.New(5, 4)
	for _, opts := range []Options{{Target: CPU}, {Target: CPU, Hilbert: true}, {Target: GPU, Device: cudasim.NewDevice(cudasim.Config{NumSMs: 2})}} {
		k, err := BuildSDDMM(adj, expr.DotAttention(5, 4), []*tensor.Tensor{x}, nil, opts)
		if err != nil {
			t.Fatalf("build: %v", err)
		}
		out := tensor.New(0, 1)
		if _, err := k.Run(out); err != nil {
			t.Fatalf("%+v: %v", opts, err)
		}
	}
}

func TestSingleVertexSelfLoop(t *testing.T) {
	csr, err := sparse.FromCOO(&sparse.COO{NumRows: 1, NumCols: 1, Row: []int32{0}, Col: []int32{0}})
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.FromSlice([]float32{1, 2, 3}, 1, 3)
	k, err := BuildSpMM(csr, expr.CopySrc(1, 3), []*tensor.Tensor{x}, AggSum, nil, Options{Target: CPU})
	if err != nil {
		t.Fatal(err)
	}
	out := tensor.New(1, 3)
	if _, err := k.Run(out); err != nil {
		t.Fatal(err)
	}
	if !out.AllClose(x, 0) {
		t.Fatalf("self-loop copy = %v", out)
	}
}
