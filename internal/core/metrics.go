package core

import (
	"sync"
	"time"

	"featgraph/internal/admission"
	"featgraph/internal/telemetry"
)

// Kernel-level metrics, one set per template type. The target label on the
// run counters is the kernel's *requested* target; a GPU-target run that
// degraded to the CPU path still counts under target="gpu", with the
// degradation tracked separately by the fallback counters (stage="build"
// for kernels whose device build failed, stage="run" for per-run device
// failures retried on CPU).
type kernelMetrics struct {
	runsCPU     *telemetry.Counter
	runsGPU     *telemetry.Counter
	latency     *telemetry.Histogram
	edges       *telemetry.Counter
	stolen      *telemetry.Counter
	fallbackRun *telemetry.Counter
	fallbackBld *telemetry.Counter
	fallbackBrk *telemetry.Counter
	brkToOpen   *telemetry.Counter
	brkToHalf   *telemetry.Counter
	brkToClosed *telemetry.Counter
	brkOpen     *telemetry.Gauge
}

func newKernelMetrics(kernel string) *kernelMetrics {
	return &kernelMetrics{
		runsCPU: telemetry.NewCounter("featgraph_kernel_runs_total",
			`kernel="`+kernel+`",target="cpu"`, "Kernel executions by template and requested target."),
		runsGPU: telemetry.NewCounter("featgraph_kernel_runs_total",
			`kernel="`+kernel+`",target="gpu"`, "Kernel executions by template and requested target."),
		latency: telemetry.NewDurationHistogram("featgraph_kernel_run_seconds",
			`kernel="`+kernel+`"`, "Wall-clock kernel run latency."),
		edges: telemetry.NewCounter("featgraph_kernel_edges_processed_total",
			`kernel="`+kernel+`"`, "Edge traversals performed by kernel runs (each feature tile re-traverses the topology)."),
		stolen: telemetry.NewCounter("featgraph_kernel_chunks_stolen_total",
			`kernel="`+kernel+`"`, "Engine chunks executed by pool helpers rather than the submitting goroutine (work-stealing imbalance signal)."),
		fallbackRun: telemetry.NewCounter("featgraph_kernel_fallbacks_total",
			`kernel="`+kernel+`",stage="run"`, "Runs degraded from GPU to CPU, by failure stage."),
		fallbackBld: telemetry.NewCounter("featgraph_kernel_fallbacks_total",
			`kernel="`+kernel+`",stage="build"`, "Runs degraded from GPU to CPU, by failure stage."),
		fallbackBrk: telemetry.NewCounter("featgraph_kernel_fallbacks_total",
			`kernel="`+kernel+`",stage="breaker"`, "Runs degraded from GPU to CPU, by failure stage."),
		brkToOpen: telemetry.NewCounter("featgraph_breaker_transitions_total",
			`kernel="`+kernel+`",to="open"`, "GPU circuit breaker state transitions by destination state."),
		brkToHalf: telemetry.NewCounter("featgraph_breaker_transitions_total",
			`kernel="`+kernel+`",to="half-open"`, "GPU circuit breaker state transitions by destination state."),
		brkToClosed: telemetry.NewCounter("featgraph_breaker_transitions_total",
			`kernel="`+kernel+`",to="closed"`, "GPU circuit breaker state transitions by destination state."),
		brkOpen: telemetry.NewGauge("featgraph_breaker_open",
			`kernel="`+kernel+`"`, "1 while the kernel's GPU circuit breaker is open, else 0."),
	}
}

var (
	spmmMetrics      = newKernelMetrics("spmm")
	sddmmMetrics     = newKernelMetrics("sddmm")
	fusedattnMetrics = newKernelMetrics("fusedattn")

	// mSpMMRows counts aggregated output rows; SDDMM has no row
	// aggregation (its unit of work is the edge), so the series exists for
	// SpMM only.
	mSpMMRows = telemetry.NewCounter("featgraph_kernel_rows_processed_total",
		`kernel="spmm"`, "Destination rows aggregated by SpMM runs (rows x feature tiles).")

	// mRecoveredPanics counts worker panics the engine recovered into
	// *KernelError (CPU paths; simulated-GPU panics surface as launch
	// failures, see featgraph_cudasim_launch_failures_total).
	mRecoveredPanics = telemetry.NewCounter("featgraph_recovered_panics_total", "",
		"Worker panics recovered into KernelError on the CPU execution paths.")

	// mNumericFailures counts Options.CheckNumerics scans that found
	// NaN/Inf in a kernel's output.
	mNumericFailures = telemetry.NewCounter("featgraph_numeric_check_failures_total", "",
		"CheckNumerics scans that failed with a NumericError.")
)

// record folds one completed run into the template's metric set. Called
// only when recording is on for the kernel (Options.Metrics or the global
// telemetry switch).
func (m *kernelMetrics) record(target Target, stats *RunStats) {
	if target == GPU {
		m.runsGPU.Inc()
	} else {
		m.runsCPU.Inc()
	}
	m.latency.Observe(stats.Duration)
	m.edges.Add(stats.EdgesProcessed)
	m.stolen.Add(stats.ChunksStolen)
}

// recordFallback counts one degraded run by failure stage.
func (m *kernelMetrics) recordFallback(buildStage bool) {
	if buildStage {
		m.fallbackBld.Inc()
	} else {
		m.fallbackRun.Inc()
	}
}

// recordBreakerReroute counts a run routed straight to CPU because the
// kernel's circuit breaker was open.
func (m *kernelMetrics) recordBreakerReroute() { m.fallbackBrk.Inc() }

// breakerHook returns the admission.Breaker onChange callback that mirrors
// the breaker's state into telemetry. Transitions are rare (threshold
// failures, cooldown probes) so the counters are recorded unconditionally
// rather than gated on telemetry.Enabled at transition time.
func (m *kernelMetrics) breakerHook() func(admission.BreakerState) {
	return func(s admission.BreakerState) {
		switch s {
		case admission.BreakerOpen:
			m.brkToOpen.Inc()
			m.brkOpen.Set(1)
		case admission.BreakerHalfOpen:
			m.brkToHalf.Inc()
			m.brkOpen.Set(0)
		default:
			m.brkToClosed.Inc()
			m.brkOpen.Set(0)
		}
	}
}

// finishRun is the common tail of both templates' RunCtx: it stamps the
// run duration, publishes LastStats, and records metrics and the run trace
// span. It is a plain call (no defer, no closure) so the steady-state run
// path stays allocation-free.
func finishRun(kernel string, m *kernelMetrics, target Target, lastMu *sync.Mutex, last *RunStats, start time.Time, stats *RunStats, metricsOn, tracing bool) {
	stats.Duration = time.Since(start)
	lastMu.Lock()
	*last = *stats
	lastMu.Unlock()
	if metricsOn {
		m.record(target, stats)
	}
	if tracing {
		telemetry.RecordSpan(kernel, 0, start, stats.Duration,
			"edges", int64(stats.EdgesProcessed), "chunks_stolen", int64(stats.ChunksStolen), 2)
	}
}
