package core

import (
	"fmt"
	"math"

	"featgraph/internal/telemetry"
	"featgraph/internal/tensor"
)

// KernelError is the structured error for a failure inside kernel
// execution: a panic recovered from a worker goroutine (a UDF evaluation
// fault, a tensor shape mismatch, an injected fault) annotated with where in
// the schedule it happened. One bad invocation surfaces as an error from
// Run/RunCtx instead of crashing the process — the degradation a serving
// system needs when a kernel, compiled once and executed millions of times,
// meets a malformed input.
type KernelError struct {
	Kernel string // "spmm" or "sddmm"
	Target Target // execution target of the failing path
	Worker int    // CPU worker index or simulated-GPU block index
	Tile   int    // feature-tile index, -1 when not tile-scoped
	Part   int    // graph-partition index, -1 when not partition-scoped
	Value  any    // recovered panic value
}

func (e *KernelError) Error() string {
	loc := ""
	if e.Tile >= 0 {
		loc += fmt.Sprintf(" tile %d", e.Tile)
	}
	if e.Part >= 0 {
		loc += fmt.Sprintf(" partition %d", e.Part)
	}
	return fmt.Sprintf("core: %s/%s worker %d%s panicked: %v", e.Kernel, e.Target, e.Worker, loc, e.Value)
}

// Unwrap exposes a panic value that was itself an error, so errors.Is/As
// reach through to the cause (e.g. a *cudasim.SharedMemError).
func (e *KernelError) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return err
	}
	return nil
}

// NumericError reports the first non-finite output value found by an
// Options.CheckNumerics scan.
type NumericError struct {
	Kernel string  // "spmm" or "sddmm"
	Row    int     // vertex (spmm) or edge id (sddmm)
	Col    int     // feature index within the row
	Value  float32 // the offending value (NaN or ±Inf)
}

func (e *NumericError) Error() string {
	what := "vertex"
	if e.Kernel == "sddmm" {
		what = "edge"
	}
	return fmt.Sprintf("core: %s output is %v at %s %d, feature %d", e.Kernel, e.Value, what, e.Row, e.Col)
}

// checkNumerics scans out and returns a *NumericError for the first NaN or
// ±Inf, nil when the output is finite.
func checkNumerics(kernel string, out *tensor.Tensor) error {
	data := out.Data()
	stride := out.RowStride()
	for i, v := range data {
		f := float64(v)
		if math.IsNaN(f) || math.IsInf(f, 0) {
			row, col := 0, i
			if stride > 0 {
				row, col = i/stride, i%stride
			}
			if telemetry.Enabled() {
				mNumericFailures.Inc()
			}
			return &NumericError{Kernel: kernel, Row: row, Col: col, Value: v}
		}
	}
	return nil
}
