// Sharded (out-of-core) execution: the SpMM/SDDMM templates applied shard
// by shard to a graph that never exists as one in-memory CSR.
//
// A ShardSource hands out contiguous destination-row shards (local rows,
// global columns and edge ids — internal/graphio.ShardedCSR is the
// on-disk implementation). The executors stream through the shards with
// partial template kernels (see the shardSpec hooks in spmm.go/sddmm.go)
// and own the cross-shard aggregation algebra:
//
//   - SpMM: the output is prefilled with the aggregation identity once,
//     each shard accumulates into its destination-row slice (a shard
//     boundary may split a row, so two shards can touch the same output
//     row — which is exactly why partial kernels must not prefill or
//     finalize), and one global finalization pass divides means by the
//     global degree and zeroes isolated vertices.
//   - SDDMM: the output is indexed by global edge id, which shard CSRs
//     carry verbatim, so each shard writes its edges into the full output
//     tensor directly; the executor zeroes it once up front.
//
// Per-shard kernels are built lazily and memoized through a ShardPlanner,
// so epoch 2..N of a training loop rebuilds a shard's kernel only if the
// residency cache evicted and re-materialized that shard in between.
package core

import (
	"context"
	"fmt"
	"sync"
	"time"

	"featgraph/internal/admission"
	"featgraph/internal/codegen"
	"featgraph/internal/expr"
	"featgraph/internal/schedule"
	"featgraph/internal/sparse"
	"featgraph/internal/tensor"
)

// shardSpec configures a partial kernel build: the kernel executes one
// shard's local CSR but validates inputs against (and indexes Dst-bound
// tensors with) the global graph.
type shardSpec struct {
	dstBase    int // global destination row of local row 0
	globalRows int
	globalCols int
	globalNNZ  int64
}

// ShardSource is a graph served as contiguous destination-row shards.
// Shard i covers global rows [rowLo, rowHi) and a contiguous edge range;
// a pinned shard is a local-row CSR (row 0 = global row rowLo) whose
// ColIdx and EID stay global. Shard boundaries may split a row: the row's
// edges are divided between the adjacent shards, and Degree reports the
// global in-degree the executors finalize with.
type ShardSource interface {
	// Dims returns the global graph dimensions.
	Dims() (numRows, numCols int, nnz int64)
	// NumShards returns the shard count.
	NumShards() int
	// ShardRows returns shard i's destination-row span [rowLo, rowHi).
	ShardRows(i int) (rowLo, rowHi int)
	// ShardNNZ returns shard i's edge count.
	ShardNNZ(i int) int64
	// Degree returns global destination row r's in-degree.
	Degree(r int) int64
	// Pin materializes shard i and returns it with a release function the
	// caller must invoke when done; while pinned the CSR must not change.
	Pin(ctx context.Context, i int) (*sparse.CSR, func(), error)
}

// ShardPlanner memoizes per-shard kernels across runs. Plan returns the
// cached kernel for (shard, adj) or invokes build and caches the result;
// adj is the identity key — a re-materialized shard (new CSR pointer)
// must rebuild, because the cached kernel's precomputed schedule aliases
// the old arrays. internal/dgl plugs its LRU plan cache in here.
type ShardPlanner interface {
	Plan(shard int, adj *sparse.CSR, build func() (Kernel, error)) (Kernel, error)
}

// mapPlanner is the default ShardPlanner: an unbounded per-executor map.
// Replacing a stale entry drops the old kernel (and its reference to the
// evicted shard's arrays), so at most one kernel per shard stays live.
type mapPlanner struct {
	mu    sync.Mutex
	plans map[int]mapPlan
}

type mapPlan struct {
	adj *sparse.CSR
	k   Kernel
}

func (p *mapPlanner) Plan(shard int, adj *sparse.CSR, build func() (Kernel, error)) (Kernel, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if pl, ok := p.plans[shard]; ok && pl.adj == adj {
		return pl.k, nil
	}
	k, err := build()
	if err != nil {
		return nil, err
	}
	if p.plans == nil {
		p.plans = make(map[int]mapPlan)
	}
	p.plans[shard] = mapPlan{adj: adj, k: k}
	return k, nil
}

// shardSubGovernor admits the per-shard sub-kernels of a sharded run: the
// executor already passed the caller's governor once for the whole run,
// so sub-kernels must not be admitted (and their scratch double-counted)
// a second time.
var shardSubGovernor = admission.NewGovernor(admission.Config{})

// scrubShardOptions derives the per-shard kernel options from the
// executor's: serving policy (admission, deadline, retries, numerics,
// metrics) stays with the executor, scheduling knobs pass through.
func scrubShardOptions(opts Options) Options {
	opts.Admission = shardSubGovernor
	opts.Deadline = 0
	opts.Retries = 0
	opts.CheckNumerics = false
	opts.Metrics = false
	return opts
}

// shardedBase is the state the two sharded executors share.
type shardedBase struct {
	src     ShardSource
	udf     *expr.UDF
	inputs  []*tensor.Tensor
	fds     *schedule.FDS
	opts    Options // executor (serving) options
	subOpts Options // scrubbed per-shard kernel options
	planner ShardPlanner

	numRows, numCols int
	nnz              int64
	outLen           int
	pattern          string
	memEstimate      int64

	lastMu sync.Mutex
	last   RunStats
}

func (s *shardedBase) build(src ShardSource, udf *expr.UDF, inputs []*tensor.Tensor, fds *schedule.FDS, opts Options, planner ShardPlanner) error {
	if opts.Target != CPU {
		return fmt.Errorf("core: sharded kernels run on CPU only")
	}
	if len(udf.OutAxes) == 0 {
		return fmt.Errorf("core: UDF must have at least one output axis")
	}
	if err := fds.Validate(udf); err != nil {
		return err
	}
	s.numRows, s.numCols, s.nnz = src.Dims()
	if err := validateBindings(s.numRows, s.numCols, s.nnz, udf, inputs); err != nil {
		return err
	}
	compiled, err := codegen.Compile(udf, inputs)
	if err != nil {
		return err
	}
	s.src, s.udf, s.inputs, s.fds = src, udf, inputs, fds
	s.opts, s.subOpts = opts, scrubShardOptions(opts)
	s.planner = planner
	if s.planner == nil {
		s.planner = &mapPlanner{}
	}
	s.outLen = compiled.OutLen()
	s.pattern = codegen.Recognize(udf, inputs).Pattern.String()
	return nil
}

// admit runs the executor's serving-policy preamble (deadline context and
// one admission pass for the whole sharded run) and returns the governed
// context, the release function, and the queued duration.
func (s *shardedBase) admit(ctx context.Context) (context.Context, context.CancelFunc, func(), time.Duration, error) {
	gov := admission.Resolve(s.opts.Admission)
	cancel := context.CancelFunc(func() {})
	if s.opts.Deadline > 0 {
		ctx, cancel = context.WithTimeout(ctx, s.opts.Deadline)
	}
	tk, err := gov.Admit(ctx, s.memEstimate)
	if err != nil {
		cancel()
		return nil, nil, nil, 0, err
	}
	return ctx, cancel, func() { gov.Release(tk) }, tk.Queued(), nil
}

func (s *shardedBase) finishShardedRun(stats *RunStats, start time.Time) {
	stats.Duration = time.Since(start)
	s.lastMu.Lock()
	s.last = *stats
	s.lastMu.Unlock()
}

// LastStats returns the statistics of the most recently completed RunCtx.
func (s *shardedBase) LastStats() RunStats {
	s.lastMu.Lock()
	defer s.lastMu.Unlock()
	return s.last
}

// Pattern returns the recognized UDF pattern.
func (s *shardedBase) Pattern() string { return s.pattern }

// --- Sharded SpMM ---

// ShardedSpMM is a generalized SpMM kernel over a ShardSource: the same
// semantics as BuildSpMM over the assembled graph, computed one shard at
// a time within the source's residency budget.
type ShardedSpMM struct {
	shardedBase
	agg AggOp
}

// BuildShardedSpMM builds a sharded SpMM kernel. planner may be nil for
// the default per-executor memoization; fds may be nil. Options carry the
// executor's serving policy and the per-shard scheduling knobs; the
// target must be CPU.
func BuildShardedSpMM(src ShardSource, udf *expr.UDF, inputs []*tensor.Tensor, agg AggOp, fds *schedule.FDS, opts Options, planner ShardPlanner) (*ShardedSpMM, error) {
	k := &ShardedSpMM{agg: agg}
	if err := k.build(src, udf, inputs, fds, opts, planner); err != nil {
		return nil, err
	}
	// Admission estimate: the global output surface; per-shard scratch is
	// bounded by the source's residency budget, which charges the ledger
	// itself as shards materialize.
	k.memEstimate = 4 * int64(k.numRows) * int64(k.outLen)
	return k, nil
}

// OutShape returns the required output tensor shape.
func (k *ShardedSpMM) OutShape() (rows, cols int) { return k.numRows, k.outLen }

// Describe returns a one-line description of the built kernel.
func (k *ShardedSpMM) Describe() string {
	return fmt.Sprintf("spmm-sharded{agg:%s pattern:%s rows:%d nnz:%d out:%d shards:%d}",
		k.agg, k.pattern, k.numRows, k.nnz, k.outLen, k.src.NumShards())
}

// Run executes the kernel into out (Run = RunCtx under context.Background()).
func (k *ShardedSpMM) Run(out *tensor.Tensor) (RunStats, error) {
	return k.RunCtx(context.Background(), out)
}

// RunCtx executes the sharded SpMM into out, a [NumRows, outLen] tensor.
// The run passes the admission governor once; each shard then executes a
// partial template kernel into its row slice of out, and a final pass
// applies the global aggregation fix-ups (mean normalization by global
// degree, isolated vertices to zero). On any error the contents of out
// are undefined.
func (k *ShardedSpMM) RunCtx(ctx context.Context, out *tensor.Tensor) (RunStats, error) {
	if out.Dim(0) != k.numRows || out.Len() != k.numRows*k.outLen {
		return RunStats{}, fmt.Errorf("core: sharded SpMM output shape %v, want [%d, %d]", out.Shape(), k.numRows, k.outLen)
	}
	if err := ctx.Err(); err != nil {
		return RunStats{}, err
	}
	ctx, cancel, release, queued, err := k.admit(ctx)
	if err != nil {
		return RunStats{}, err
	}
	defer cancel()
	defer release()

	start := time.Now()
	stats := RunStats{Queued: queued}
	out.Fill(k.agg.identity())
	odata := out.Data()
	stride := out.RowStride()
	for i := 0; i < k.src.NumShards(); i++ {
		if k.src.ShardNNZ(i) == 0 {
			continue // nothing to accumulate; rows finalize from the identity
		}
		adj, unpin, err := k.src.Pin(ctx, i)
		if err != nil {
			return RunStats{}, err
		}
		rowLo, rowHi := k.src.ShardRows(i)
		kern, err := k.planner.Plan(i, adj, func() (Kernel, error) {
			return buildSpMM(adj, k.udf, k.inputs, k.agg, k.fds, k.subOpts, &shardSpec{
				dstBase: rowLo, globalRows: k.numRows, globalCols: k.numCols, globalNNZ: k.nnz,
			})
		})
		if err != nil {
			unpin()
			return RunStats{}, err
		}
		view := tensor.FromSlice(odata[rowLo*stride:rowHi*stride], rowHi-rowLo, stride)
		sstats, err := kern.RunCtx(ctx, view)
		unpin()
		if err != nil {
			return RunStats{}, fmt.Errorf("core: sharded SpMM shard %d: %w", i, err)
		}
		stats.EdgesProcessed += sstats.EdgesProcessed
		stats.ChunksStolen += sstats.ChunksStolen
	}

	// Global finalization across shard boundaries: split rows have
	// accumulated contributions from both neighbors by now, so the global
	// degree is the right normalizer everywhere.
	rc := newRunControl(ctx)
	site := workerSite{kernel: "spmm-sharded", target: CPU, tile: -1, part: -1}
	parallelFor(rc, site, k.numRows, max(k.opts.NumThreads, 1), func(_, rlo, rhi int) {
		for r := rlo; r < rhi; r++ {
			deg := k.src.Degree(r)
			row := odata[r*stride : (r+1)*stride]
			if deg == 0 {
				clear(row)
				continue
			}
			if k.agg == AggMean {
				inv := 1 / float32(deg)
				for f := range row {
					row[f] *= inv
				}
			}
		}
	})
	if err := rc.verdict(); err != nil {
		return RunStats{}, err
	}
	if k.opts.CheckNumerics {
		if err := checkNumerics("spmm", out); err != nil {
			return stats, err
		}
	}
	k.finishShardedRun(&stats, start)
	return stats, nil
}

// --- Sharded SDDMM ---

// ShardedSDDMM is a generalized SDDMM kernel over a ShardSource: the same
// semantics as BuildSDDMM over the assembled graph, computed one shard at
// a time within the source's residency budget.
type ShardedSDDMM struct {
	shardedBase
	outRows int
}

// BuildShardedSDDMM builds a sharded SDDMM kernel; see BuildShardedSpMM
// for the parameter conventions. The output is one row per global edge,
// so the global edge count must fit an in-memory tensor.
func BuildShardedSDDMM(src ShardSource, udf *expr.UDF, inputs []*tensor.Tensor, fds *schedule.FDS, opts Options, planner ShardPlanner) (*ShardedSDDMM, error) {
	k := &ShardedSDDMM{}
	if err := k.build(src, udf, inputs, fds, opts, planner); err != nil {
		return nil, err
	}
	k.outRows = int(k.nnz)
	if int64(k.outRows) != k.nnz || k.outRows < 0 {
		return nil, fmt.Errorf("core: sharded SDDMM output needs %d rows, beyond addressable tensors", k.nnz)
	}
	k.memEstimate = 4 * k.nnz * int64(k.outLen)
	return k, nil
}

// OutShape returns the required output tensor shape.
func (k *ShardedSDDMM) OutShape() (rows, cols int) { return k.outRows, k.outLen }

// Describe returns a one-line description of the built kernel.
func (k *ShardedSDDMM) Describe() string {
	return fmt.Sprintf("sddmm-sharded{pattern:%s rows:%d nnz:%d out:%d shards:%d}",
		k.pattern, k.numRows, k.nnz, k.outLen, k.src.NumShards())
}

// Run executes the kernel into out (Run = RunCtx under context.Background()).
func (k *ShardedSDDMM) Run(out *tensor.Tensor) (RunStats, error) {
	return k.RunCtx(context.Background(), out)
}

// RunCtx executes the sharded SDDMM into out, an [NNZ, outLen] tensor
// indexed by global edge id. The run passes the admission governor once;
// the executor zeroes out, then each shard's partial kernel writes its
// edges' rows directly (shard CSRs carry global edge ids). On any error
// the contents of out are undefined.
func (k *ShardedSDDMM) RunCtx(ctx context.Context, out *tensor.Tensor) (RunStats, error) {
	if out.Dim(0) != k.outRows || out.Len() != k.outRows*k.outLen {
		return RunStats{}, fmt.Errorf("core: sharded SDDMM output shape %v, want [%d, %d]", out.Shape(), k.outRows, k.outLen)
	}
	if err := ctx.Err(); err != nil {
		return RunStats{}, err
	}
	ctx, cancel, release, queued, err := k.admit(ctx)
	if err != nil {
		return RunStats{}, err
	}
	defer cancel()
	defer release()

	start := time.Now()
	stats := RunStats{Queued: queued}
	out.Zero()
	for i := 0; i < k.src.NumShards(); i++ {
		if k.src.ShardNNZ(i) == 0 {
			continue // no edges, no output rows
		}
		adj, unpin, err := k.src.Pin(ctx, i)
		if err != nil {
			return RunStats{}, err
		}
		rowLo, _ := k.src.ShardRows(i)
		kern, err := k.planner.Plan(i, adj, func() (Kernel, error) {
			return buildSDDMM(adj, k.udf, k.inputs, k.fds, k.subOpts, &shardSpec{
				dstBase: rowLo, globalRows: k.numRows, globalCols: k.numCols, globalNNZ: k.nnz,
			})
		})
		if err != nil {
			unpin()
			return RunStats{}, err
		}
		sstats, err := kern.RunCtx(ctx, out)
		unpin()
		if err != nil {
			return RunStats{}, fmt.Errorf("core: sharded SDDMM shard %d: %w", i, err)
		}
		stats.EdgesProcessed += sstats.EdgesProcessed
		stats.ChunksStolen += sstats.ChunksStolen
	}
	if k.opts.CheckNumerics {
		if err := checkNumerics("sddmm", out); err != nil {
			return stats, err
		}
	}
	k.finishShardedRun(&stats, start)
	return stats, nil
}

// Compile-time interface checks: the sharded executors are Kernels.
var (
	_ Kernel = (*ShardedSpMM)(nil)
	_ Kernel = (*ShardedSDDMM)(nil)
)
