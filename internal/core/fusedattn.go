// The fused attention kernel: SDDMM (dot-product scores) → edge softmax →
// SpMM (attention-weighted sum) in a single destination-row pass, the
// FusedMM-style fusion of the three kernels GAT attention otherwise runs
// separately. The paper's §II-A decomposition makes the stages explicit;
// this kernel exploits that the softmax of a destination row only depends
// on that row's in-edges, so one traversal can compute scores, normalize
// them, and aggregate — with the scores held in chunk-local scratch sized
// by the maximum in-degree, never materialized as a full [m,1] tensor
// between stages.
//
// Numerics: each row runs a max-then-exponentiate softmax — one pass
// maintains the running maximum while buffering raw scores, then a second
// pass computes e^(s−max) with the batch float32 exponential (ExpSliceF32),
// sums it, and normalizes. Every exponentiated argument is ≤ 0, so the sums
// stay finite for any input magnitudes — the same stability guarantee as
// the flash-attention online-softmax recurrence, at one exp per edge
// instead of two (the scores are already buffered in chunk-local scratch,
// so there is no need to rescale a partial sum on a new maximum).
//
// The forward additionally writes two per-edge vectors the fused backward
// needs: alpha (the softmax probabilities) and deriv (dscore/ddot =
// scale·LeakyReLU'(dot), folding the score transform's local derivative).
// Both are caller-owned [m,1] buffers — for dgl they are the op's staging
// buffers, which also makes them plan-cache key material.
package core

import (
	"context"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"featgraph/internal/admission"
	"featgraph/internal/faultinject"
	"featgraph/internal/partition"
	"featgraph/internal/sparse"
	"featgraph/internal/telemetry"
	"featgraph/internal/tensor"
	"featgraph/internal/workpool"
)

// negInf32 is the streaming-softmax running-max initializer: a true
// -Inf rather than a most-negative-finite literal, so any finite score
// (however small) replaces it and the e^(m_old−m_new) rescale underflows
// cleanly to zero on the first edge.
var negInf32 = float32(math.Inf(-1))

// FusedAttnConfig parameterizes the score transform applied between the
// dot product and the softmax: score = Scale · LeakyReLU(x_src·y_dst).
type FusedAttnConfig struct {
	// NegSlope is the LeakyReLU negative slope (GAT uses 0.2).
	NegSlope float32
	// Scale multiplies the activated score (GAT uses 1/√d); 0 means 1.
	Scale float32
}

// FusedAttnKernel is the built fused forward kernel. Out is [NumRows, d]:
// out[v] = Σ_{u→v} α_e · x[u] with α the per-destination-row softmax of
// Scale·LeakyReLU(x[u]·y[v]).
//
// Like the template kernels it may be Run concurrently only with distinct
// output tensors — and additionally only with distinct alpha/deriv buffers,
// which belong to the build, so concurrent runs of the *same* built kernel
// race on them. dgl serializes per-op Applies, which satisfies both.
type FusedAttnKernel struct {
	adj      *sparse.CSR
	x, y     *tensor.Tensor // [NumCols, d] source / [NumRows, d] destination features
	alpha    *tensor.Tensor // [≥m, 1] softmax probabilities, written per run
	deriv    *tensor.Tensor // [≥m, 1] dscore/ddot factors, written per run
	cfg      FusedAttnConfig
	opts     Options
	d        int
	maxInDeg int

	// Engine state: edge-balanced row chunks and the run-state freelist.
	chunks []partition.Range
	states chan *fusedAttnRunState

	// GPU state; nil when the target is CPU.
	gpu         *fusedAttnGPU
	breaker     *admission.Breaker
	memEstimate int64

	lastMu sync.Mutex
	last   RunStats
}

// BuildFusedAttention builds the fused attention forward kernel. x holds
// source-vertex features ([NumCols, d]), y destination-vertex features
// ([NumRows, d]; the same tensor as x in GAT). alpha and deriv are
// caller-owned per-edge buffers with at least adj.NNZ() elements each; the
// kernel fills them on every run for consumption by the backward kernel.
//
// Scheduling: the kernel ignores graph partitioning and feature tiling —
// the row softmax needs a destination's full in-edge set and the dot
// product the full feature row, so the only parallel axis is the
// destination row, dispatched as edge-balanced chunks on the shared worker
// pool (Options.LegacySched selects a plain uniform row split instead).
func BuildFusedAttention(adj *sparse.CSR, x, y, alpha, deriv *tensor.Tensor, cfg FusedAttnConfig, opts Options) (*FusedAttnKernel, error) {
	tracing := telemetry.TraceActive()
	var buildStart time.Time
	if tracing {
		buildStart = time.Now()
	}
	if err := adj.Validate(); err != nil {
		return nil, fmt.Errorf("core: invalid adjacency: %w", err)
	}
	d := x.Dim(1)
	if d < 1 {
		return nil, fmt.Errorf("core: fused attention needs >= 1 feature, got %d", d)
	}
	if x.Dim(0) != adj.NumCols {
		return nil, fmt.Errorf("core: fused attention x has %d rows, graph has %d source vertices", x.Dim(0), adj.NumCols)
	}
	if y.Dim(0) != adj.NumRows || y.Dim(1) != d {
		return nil, fmt.Errorf("core: fused attention y shape %v, want [%d, %d]", y.Shape(), adj.NumRows, d)
	}
	m := adj.NNZ()
	if alpha.Len() < m || deriv.Len() < m {
		return nil, fmt.Errorf("core: fused attention edge buffers hold %d/%d values, graph has %d edges", alpha.Len(), deriv.Len(), m)
	}
	if cfg.Scale == 0 {
		cfg.Scale = 1
	}
	if opts.Target != CPU && opts.Target != GPU {
		return nil, fmt.Errorf("core: unknown target %d", opts.Target)
	}
	k := &FusedAttnKernel{adj: adj, x: x, y: y, alpha: alpha, deriv: deriv, cfg: cfg, opts: opts, d: d}
	k.maxInDeg = maxRowDegree(adj)
	threads := max(opts.NumThreads, 1)
	k.chunks = edgeBalancedChunks(adj, numChunksFor(threads, adj.NumRows, m))
	k.states = make(chan *fusedAttnRunState, runStatePoolCap)

	if opts.Target == GPU {
		k.gpu = buildFusedAttnGPU(k.opts)
		if opts.BreakerThreshold >= 0 {
			k.breaker = admission.NewBreaker(opts.BreakerThreshold, opts.BreakerCooldown, fusedattnMetrics.breakerHook())
		}
	}

	// Admission memory estimate: the output surface, the per-edge alpha and
	// deriv writes, and one run state's score scratch, in float32 bytes.
	k.memEstimate = 4 * (int64(adj.NumRows)*int64(d) + 2*int64(m) +
		int64(scratchSlots(opts.NumThreads))*int64(k.maxInDeg))

	k.states <- k.newRunState()
	if k.gpu != nil {
		k.gpu.states <- k.newGPULaunch()
	}
	if tracing {
		telemetry.RecordSpan("fusedattn.build", 0, buildStart, time.Since(buildStart), "rows", int64(adj.NumRows), "nnz", int64(m), 2)
	}
	return k, nil
}

// maxRowDegree returns the widest in-edge set — the score scratch size.
func maxRowDegree(adj *sparse.CSR) int {
	maxDeg := 0
	for r := 0; r < adj.NumRows; r++ {
		maxDeg = max(maxDeg, int(adj.RowPtr[r+1]-adj.RowPtr[r]))
	}
	return maxDeg
}

// OutShape returns the required output tensor shape.
func (k *FusedAttnKernel) OutShape() (rows, cols int) { return k.adj.NumRows, k.d }

// Pattern identifies the fused kernel (it has no UDF to recognize).
func (k *FusedAttnKernel) Pattern() string { return "fusedattn" }

// Describe returns a one-line description of the built kernel.
func (k *FusedAttnKernel) Describe() string {
	return fmt.Sprintf("fusedattn{target:%s rows:%d nnz:%d d:%d maxdeg:%d slope:%g scale:%g}",
		k.opts.Target, k.adj.NumRows, k.adj.NNZ(), k.d, k.maxInDeg, k.cfg.NegSlope, k.cfg.Scale)
}

// LastStats returns the statistics of the most recently completed RunCtx.
func (k *FusedAttnKernel) LastStats() RunStats {
	k.lastMu.Lock()
	defer k.lastMu.Unlock()
	return k.last
}

// Run executes the kernel into out (Run = RunCtx under context.Background()).
func (k *FusedAttnKernel) Run(out *tensor.Tensor) (RunStats, error) {
	return k.RunCtx(context.Background(), out)
}

// RunCtx executes the fused forward into out ([NumRows, d]) under ctx and
// the kernel's serving policy — the same governed shape as the template
// kernels: admission (concurrency/memory/deadline), the GPU path behind the
// circuit breaker with CPU fallback, stall-watchdog cancellation, numeric
// checking, and retry with jittered backoff. See SpMMKernel.RunCtx for the
// full semantics. As a side effect a successful run fills the alpha and
// deriv buffers passed at build time.
func (k *FusedAttnKernel) RunCtx(ctx context.Context, out *tensor.Tensor) (RunStats, error) {
	if out.Dim(0) != k.adj.NumRows || out.Len() != k.adj.NumRows*k.d {
		return RunStats{}, fmt.Errorf("core: fused attention output shape %v, want [%d, %d]", out.Shape(), k.adj.NumRows, k.d)
	}
	if err := ctx.Err(); err != nil {
		return RunStats{}, err
	}
	gov := admission.Resolve(k.opts.Admission)
	if k.opts.Deadline > 0 {
		dctx, cancel := context.WithTimeout(ctx, k.opts.Deadline)
		defer cancel()
		ctx = dctx
	}
	tk, err := gov.Admit(ctx, k.memEstimate)
	if err != nil {
		return RunStats{}, err
	}
	stats, err := k.runAttempts(ctx, out, tk.Queued())
	gov.Release(tk)
	return stats, err
}

// runAttempts drives runAttempt under the kernel's retry policy.
func (k *FusedAttnKernel) runAttempts(ctx context.Context, out *tensor.Tensor, queued time.Duration) (RunStats, error) {
	for attempt := 0; ; attempt++ {
		stats, err := k.runAttempt(ctx, out, queued, attempt)
		if err == nil || attempt >= k.opts.Retries || !retryable(err) || ctx.Err() != nil {
			return stats, err
		}
		admission.RecordRetry()
		if !admission.SleepBackoff(ctx, attempt) {
			return stats, err
		}
	}
}

// runAttempt is one execution attempt: GPU behind the breaker with CPU
// fallback, or the CPU path, plus numeric checking and stats publication.
func (k *FusedAttnKernel) runAttempt(ctx context.Context, out *tensor.Tensor, queued time.Duration, attempt int) (RunStats, error) {
	metricsOn := k.opts.Metrics || telemetry.Enabled()
	tracing := telemetry.TraceActive()
	start := time.Now()
	stats := RunStats{Queued: queued, Retries: attempt}
	if k.opts.Target == GPU && k.breaker.Allow() {
		gstats, err := k.runGPU(ctx, out)
		if err == nil {
			k.breaker.RecordSuccess()
			gstats.Queued, gstats.Retries = queued, attempt
			stats = gstats
		} else {
			if ctxDone(ctx, err) {
				k.breaker.RecordCancel()
				return RunStats{}, err
			}
			k.breaker.RecordFailure()
			if k.opts.NoFallback {
				return RunStats{}, err
			}
			stats = RunStats{Queued: queued, Retries: attempt}
			if cpuErr := k.runCPU(ctx, out, &stats); cpuErr != nil {
				return RunStats{}, fmt.Errorf("core: gpu run failed (%v); cpu fallback failed: %w", err, cpuErr)
			}
			stats.Fallback = true
			stats.FallbackReason = err.Error()
			if metricsOn {
				fusedattnMetrics.recordFallback(false)
			}
			if tracing {
				telemetry.RecordInstant("fusedattn.fallback", 0, "run_stage", 1, 1)
			}
		}
	} else {
		if err := k.runCPU(ctx, out, &stats); err != nil {
			return RunStats{}, err
		}
		if k.opts.Target == GPU {
			// The circuit breaker is open: routed straight to CPU.
			stats.Fallback = true
			stats.FallbackReason = "gpu circuit breaker open"
			if metricsOn {
				fusedattnMetrics.recordBreakerReroute()
			}
			if tracing {
				telemetry.RecordInstant("fusedattn.fallback", 0, "breaker_open", 1, 1)
			}
		}
	}
	if k.breaker != nil {
		stats.BreakerState = k.breaker.State().String()
	}
	if k.opts.CheckNumerics {
		if err := checkNumerics("fusedattn", out); err != nil {
			return stats, err
		}
	}
	finishRun("fusedattn.run", fusedattnMetrics, k.opts.Target, &k.lastMu, &k.last, start, &stats, metricsOn, tracing)
	return stats, nil
}

// fusedAttnScratch is one runner slot's row-local score buffer, sized by
// the maximum in-degree at build time so runs never allocate.
type fusedAttnScratch struct {
	scores []float32
}

// fusedAttnRunState is one execution's worth of reusable engine state.
type fusedAttnRunState struct {
	k    *FusedAttnKernel
	rc   runControl
	job  workpool.Job
	site workerSite

	out    *tensor.Tensor
	edges  atomic.Uint64
	stolen atomic.Uint64
	beacon admission.Beacon

	scratch []*fusedAttnScratch
}

func (k *FusedAttnKernel) newRunState() *fusedAttnRunState {
	st := &fusedAttnRunState{k: k, site: workerSite{kernel: "fusedattn", target: CPU, tile: -1, part: -1}}
	st.scratch = make([]*fusedAttnScratch, scratchSlots(k.opts.NumThreads))
	for w := range st.scratch {
		st.scratch[w] = &fusedAttnScratch{scores: make([]float32, k.maxInDeg)}
	}
	st.job.Body = guard(&st.rc, &st.site, st.runChunk)
	st.job.Stop = st.rc.stop
	st.job.Progress = st.beacon.Counter()
	return st
}

func (k *FusedAttnKernel) getRunState() *fusedAttnRunState {
	select {
	case st := <-k.states:
		return st
	default:
		return k.newRunState()
	}
}

func (k *FusedAttnKernel) putRunState(st *fusedAttnRunState) {
	st.out = nil
	select {
	case k.states <- st:
	default:
	}
}

// runChunk processes one edge-balanced row chunk of the forward pass.
func (st *fusedAttnRunState) runChunk(slot, ci int) {
	r := st.k.chunks[ci]
	if slot != 0 {
		st.stolen.Add(1)
	}
	st.edges.Add(uint64(st.k.adj.RowPtr[r.Hi] - st.k.adj.RowPtr[r.Lo]))
	faultinject.Hit(faultinject.SiteFusedAttnCPUWorker, st.rc.done, st.rc.quit)
	sc := st.scratch[slot]
	for lo := r.Lo; lo < r.Hi; lo += cancelChunk {
		if st.rc.stop() {
			return
		}
		st.k.fwdRows(st.out, sc, lo, min(lo+cancelChunk, r.Hi))
	}
	ostride := st.out.RowStride()
	odata := st.out.Data()
	faultinject.CorruptFloats(faultinject.SiteFusedAttnCPUOutput, odata[r.Lo*ostride:r.Hi*ostride])
}

// runCPU dispatches to the engine or the legacy scheduler.
func (k *FusedAttnKernel) runCPU(ctx context.Context, out *tensor.Tensor, stats *RunStats) error {
	if k.opts.LegacySched {
		err := k.runCPULegacy(ctx, out)
		if err == nil {
			stats.EdgesProcessed = uint64(k.adj.NNZ())
		}
		return err
	}
	return k.runCPUEngine(ctx, out, stats)
}

// runCPUEngine executes the single fused row phase on the persistent
// engine: edge-balanced chunks drained from the shared pool, zero per-run
// allocation.
func (k *FusedAttnKernel) runCPUEngine(ctx context.Context, out *tensor.Tensor, stats *RunStats) error {
	threads := max(k.opts.NumThreads, 1)
	pool := workpool.Default()
	st := k.getRunState()
	defer k.putRunState(st)
	if gov := admission.Resolve(k.opts.Admission); gov.WatchdogEnabled() {
		wctx, cancel := context.WithCancelCause(ctx)
		defer cancel(nil)
		defer gov.Watch(cancel, &st.beacon, "fusedattn/cpu-engine")()
		ctx = wctx
	}
	st.rc.reset(ctx)
	st.out = out
	st.edges.Store(0)
	st.stolen.Store(0)
	tracing := telemetry.TraceActive()
	out.Zero()

	var phaseStart time.Time
	if tracing {
		phaseStart = time.Now()
	}
	pool.Run(&st.job, len(k.chunks), threads)
	if tracing {
		telemetry.RecordSpan("fusedattn.phase", 0, phaseStart, time.Since(phaseStart), "chunks", int64(len(k.chunks)), "", 0, 1)
	}
	stats.EdgesProcessed = st.edges.Load()
	stats.ChunksStolen = st.stolen.Load()
	return stallCause(ctx, st.rc.verdict())
}

// runCPULegacy is the pre-engine scheduler: fresh goroutines over a uniform
// contiguous row split with per-run scratch, kept as the ablation baseline.
func (k *FusedAttnKernel) runCPULegacy(ctx context.Context, out *tensor.Tensor) error {
	rc := newRunControl(ctx)
	threads := max(k.opts.NumThreads, 1)
	out.Zero()
	scratch := make([]*fusedAttnScratch, threads)
	for w := range scratch {
		scratch[w] = &fusedAttnScratch{scores: make([]float32, k.maxInDeg)}
	}
	site := workerSite{kernel: "fusedattn", target: CPU, tile: -1, part: -1}
	ostride := out.RowStride()
	odata := out.Data()
	parallelFor(rc, site, k.adj.NumRows, threads, func(w, rlo, rhi int) {
		faultinject.Hit(faultinject.SiteFusedAttnCPUWorker, rc.done, rc.quit)
		for lo := rlo; lo < rhi; lo += cancelChunk {
			if rc.stop() {
				return
			}
			k.fwdRows(out, scratch[w], lo, min(lo+cancelChunk, rhi))
		}
		faultinject.CorruptFloats(faultinject.SiteFusedAttnCPUOutput, odata[rlo*ostride:rhi*ostride])
	})
	return rc.verdict()
}

// fwdRows runs the fused forward for destination rows [rlo, rhi): scores
// and the streaming max/sum in pass one, batch exponential + normalization
// + weighted aggregation in pass two. out rows must be pre-zeroed.
func (k *FusedAttnKernel) fwdRows(out *tensor.Tensor, sc *fusedAttnScratch, rlo, rhi int) {
	if k.d%8 == 0 {
		// Width-specialized instantiation, FeatGraph-style: the common
		// multiple-of-eight feature widths walk rows in fixed 8-wide blocks.
		k.fwdRowsW8(out, sc, rlo, rhi)
		return
	}
	adj := k.adj
	d := k.d
	xd, xs := k.x.Data(), k.x.RowStride()
	yd, ys := k.y.Data(), k.y.RowStride()
	ad, dd := k.alpha.Data(), k.deriv.Data()
	odata, ostride := out.Data(), out.RowStride()
	scale, slope := k.cfg.Scale, k.cfg.NegSlope

	for v := rlo; v < rhi; v++ {
		lo, hi := int(adj.RowPtr[v]), int(adj.RowPtr[v+1])
		deg := hi - lo
		if deg == 0 {
			continue // zero in-degree aggregates to zero (DGL's convention)
		}
		yrow := yd[v*ys : v*ys+d]
		scores := sc.scores[:deg]

		// Pass 1: raw scores and the running row maximum. The sum waits for
		// pass 2: with the scores buffered, one batch exponential serves
		// both the sum and the probabilities, so each edge pays exactly one
		// exp instead of the streaming recurrence's two.
		runMax := negInf32
		for j := 0; j < deg; j++ {
			p := lo + j
			u := int(adj.ColIdx[p])
			xrow := xd[u*xs : u*xs+d]
			// Four independent accumulators: a single running sum serializes
			// on FP-add latency, which at small d costs more than the
			// multiplies themselves.
			var d0, d1, d2, d3 float32
			f := 0
			for ; f+4 <= d; f += 4 {
				d0 += xrow[f] * yrow[f]
				d1 += xrow[f+1] * yrow[f+1]
				d2 += xrow[f+2] * yrow[f+2]
				d3 += xrow[f+3] * yrow[f+3]
			}
			for ; f < d; f++ {
				d0 += xrow[f] * yrow[f]
			}
			dot := (d0 + d1) + (d2 + d3)
			// Constant-select form compiles to CMOV; the sign of a raw
			// attention score is data-dependent and defeats the branch
			// predictor.
			g := slope
			if dot > 0 {
				g = 1
			}
			s := dot * scale * g
			scores[j] = s
			dd[adj.EID[p]] = scale * g
			if s > runMax {
				runMax = s
			}
		}

		// Pass 2: batch exponential of s−max (all ≤ 0, so nothing can
		// overflow) with the row sum folded into the same traversal, then
		// the normalized weighted sum into the output row.
		inv := 1 / expShiftSumF32(scores, runMax)
		orow := odata[v*ostride : v*ostride+d]
		for j := 0; j < deg; j++ {
			p := lo + j
			a := scores[j] * inv
			ad[adj.EID[p]] = a
			u := int(adj.ColIdx[p])
			xrow := xd[u*xs : u*xs+d]
			for f := range orow {
				orow[f] += a * xrow[f]
			}
		}
	}
}

// fwdRowsW8 is fwdRows instantiated for feature widths that are a multiple
// of eight — the template-specialization move FeatGraph makes per feature
// dimension, here applied at the width-class level. Rows are traversed in
// fixed 8-wide blocks through array pointers, so the per-element bounds
// checks and loop bookkeeping of the generic path disappear; the dot
// products keep four independent accumulator chains (the same split, and so
// the same rounding, as the generic path at d=8); the LeakyReLU slope is a
// two-entry table select rather than a branch (a raw score's sign is
// data-dependent and defeats the predictor); and the weighted sum
// accumulates each 8-wide output block in registers across the whole
// in-edge set, storing once per block instead of read-modify-writing the
// output row on every edge.
func (k *FusedAttnKernel) fwdRowsW8(out *tensor.Tensor, sc *fusedAttnScratch, rlo, rhi int) {
	adj := k.adj
	d := k.d
	xd, xs := k.x.Data(), k.x.RowStride()
	yd, ys := k.y.Data(), k.y.RowStride()
	ad, dd := k.alpha.Data(), k.deriv.Data()
	odata, ostride := out.Data(), out.RowStride()
	scale, slope := k.cfg.Scale, k.cfg.NegSlope
	// dScore/dDot by sign of the dot: index 1 when dot > 0. The score is
	// dot·deriv, so the select covers both outputs of the transform.
	drvTab := [2]float32{scale * slope, scale}

	for v := rlo; v < rhi; v++ {
		lo, hi := int(adj.RowPtr[v]), int(adj.RowPtr[v+1])
		deg := hi - lo
		if deg == 0 {
			continue // zero in-degree aggregates to zero (DGL's convention)
		}
		yrow := yd[v*ys : v*ys+d]
		scores := sc.scores[:deg]

		runMax := negInf32
		for j := 0; j < deg; j++ {
			p := lo + j
			u := int(adj.ColIdx[p])
			xrow := xd[u*xs : u*xs+d]
			var d0, d1, d2, d3 float32
			for f := 0; f+8 <= d; f += 8 {
				xb := (*[8]float32)(xrow[f : f+8])
				yb := (*[8]float32)(yrow[f : f+8])
				d0 += xb[0]*yb[0] + xb[4]*yb[4]
				d1 += xb[1]*yb[1] + xb[5]*yb[5]
				d2 += xb[2]*yb[2] + xb[6]*yb[6]
				d3 += xb[3]*yb[3] + xb[7]*yb[7]
			}
			dot := (d0 + d1) + (d2 + d3)
			var gi uint32
			if dot > 0 {
				gi = 1
			}
			drv := drvTab[gi&1]
			s := dot * drv
			scores[j] = s
			dd[adj.EID[p]] = drv
			if s > runMax {
				runMax = s
			}
		}

		// Normalize in place so the aggregation below reads plain α.
		inv := 1 / expShiftSumF32(scores, runMax)
		for j := 0; j < deg; j++ {
			a := scores[j] * inv
			scores[j] = a
			ad[adj.EID[lo+j]] = a
		}
		orow := odata[v*ostride : v*ostride+d]
		for f := 0; f+8 <= d; f += 8 {
			ob := (*[8]float32)(orow[f : f+8])
			var a0, a1, a2, a3, a4, a5, a6, a7 float32
			for j := 0; j < deg; j++ {
				a := scores[j]
				base := int(adj.ColIdx[lo+j])*xs + f
				xb := (*[8]float32)(xd[base : base+8])
				a0 += a * xb[0]
				a1 += a * xb[1]
				a2 += a * xb[2]
				a3 += a * xb[3]
				a4 += a * xb[4]
				a5 += a * xb[5]
				a6 += a * xb[6]
				a7 += a * xb[7]
			}
			ob[0] += a0
			ob[1] += a1
			ob[2] += a2
			ob[3] += a3
			ob[4] += a4
			ob[5] += a5
			ob[6] += a6
			ob[7] += a7
		}
	}
}
