package core

import (
	"sort"

	"featgraph/internal/partition"
	"featgraph/internal/sparse"
)

// Chunking policy for the execution engine. Phases are split into more
// chunks than runners so the atomic-cursor dequeue can rebalance load
// dynamically (a runner stuck on a heavy chunk simply takes fewer chunks),
// but not so many that cursor traffic and faultinject probes dominate on
// small graphs.
const (
	// chunksPerRunner is the oversubscription factor: how many chunks each
	// requested worker should see on average.
	chunksPerRunner = 4
	// minChunkEdges is the targeted minimum work per chunk; graphs with few
	// edges get fewer chunks rather than degenerate slivers.
	minChunkEdges = 256
)

// numChunksFor picks the chunk count for a phase over rows rows and nnz
// edges with the requested worker count. Single-threaded kernels use one
// chunk (no scheduling overhead at all).
func numChunksFor(threads, rows, nnz int) int {
	if threads <= 1 || rows <= 1 {
		return 1
	}
	// All sizing math in int64: threads*chunksPerRunner and nnz are
	// externally supplied and must not wrap on 32-bit int platforms.
	c := int64(threads) * chunksPerRunner
	if byEdges := max(int64(nnz)/minChunkEdges, int64(threads)); c > byEdges {
		c = byEdges
	}
	return int(max(min(c, int64(rows)), 1))
}

// edgeBalancedChunks splits the rows of part into nchunks contiguous chunks
// of approximately equal edge count (nnz), computed from the CSR row-pointer
// prefix sums. This is what makes the engine robust to power-law degree
// distributions: a uniform row split hands one worker nearly all the edges
// of a skewed graph, while edge-balanced chunks put the same number of
// memory touches in every chunk (§IV-A's load-balancing argument). Chunk
// boundaries are found by binary search on RowPtr, so building the chunk
// list costs O(nchunks · log rows) at kernel-build time and nothing per run.
//
// Every row appears in exactly one chunk; empty chunks are elided, so the
// result may be shorter than nchunks.
func edgeBalancedChunks(part *sparse.CSR, nchunks int) []partition.Range {
	rows := part.NumRows
	nnz := part.NNZ()
	if nchunks <= 1 || rows <= 1 || nnz == 0 {
		if rows == 0 {
			return nil
		}
		return []partition.Range{{Lo: 0, Hi: rows}}
	}
	nchunks = min(nchunks, rows)
	chunks := make([]partition.Range, 0, nchunks)
	lo := 0
	for c := 1; c <= nchunks && lo < rows; c++ {
		// The boundary is the first row at or past this chunk's share of
		// the edge total — and always at least one row beyond lo, so the
		// chunk is never empty even when a single row exceeds the target.
		// The target stays int64 end-to-end: narrowing nnz*c/nchunks to
		// int32 wraps for graphs past 2^31 edges and would silently send
		// every boundary to row 0.
		target := int64(nnz) * int64(c) / int64(nchunks)
		hi := lo + sort.Search(rows-lo, func(i int) bool {
			return int64(part.RowPtr[lo+i+1]) >= target
		}) + 1
		if c == nchunks || hi > rows {
			hi = rows
		}
		chunks = append(chunks, partition.Range{Lo: lo, Hi: hi})
		lo = hi
	}
	return chunks
}

// EdgeBalancedRowChunks exposes the engine's edge-balanced row chunking
// policy (oversubscription factor, minimum edges per chunk, prefix-sum
// boundary search) for row-parallel segment loops outside the package —
// dgl's edge softmax drives the shared worker pool over these chunks.
func EdgeBalancedRowChunks(adj *sparse.CSR, threads int) []partition.Range {
	threads = max(threads, 1)
	return edgeBalancedChunks(adj, numChunksFor(threads, adj.NumRows, adj.NNZ()))
}

// uniformChunks splits [0, n) into nchunks equal-sized ranges, eliding
// empty ones. Used for phases whose per-element cost is uniform (SDDMM edge
// traversal, aggregation finalization), where edge balancing is moot.
func uniformChunks(n, nchunks int) []partition.Range {
	if n <= 0 {
		return nil
	}
	if nchunks <= 1 || n == 1 {
		return []partition.Range{{Lo: 0, Hi: n}}
	}
	nchunks = min(nchunks, n)
	chunks := make([]partition.Range, 0, nchunks)
	for c := 0; c < nchunks; c++ {
		lo, hi := c*n/nchunks, (c+1)*n/nchunks
		if lo < hi {
			chunks = append(chunks, partition.Range{Lo: lo, Hi: hi})
		}
	}
	return chunks
}
