package core

import (
	"context"
	"fmt"
	"sync"
	"time"

	"featgraph/internal/admission"
	"featgraph/internal/codegen"
	"featgraph/internal/expr"
	"featgraph/internal/faultinject"
	"featgraph/internal/partition"
	"featgraph/internal/schedule"
	"featgraph/internal/sparse"
	"featgraph/internal/telemetry"
	"featgraph/internal/tensor"
)

// SDDMMKernel is a built generalized-SDDMM kernel: the paper's
// featgraph.sddmm(A, edgefunc, target, fds). It computes a new feature for
// every edge — out[e] = edgefunc(src, dst, e) — producing an |E|×outLen
// tensor indexed by global edge id.
type SDDMMKernel struct {
	adj    *sparse.CSR
	opts   Options
	outLen int

	// Sharded execution (see sharded.go): a partial kernel computes one
	// shard's edges of a larger graph directly into the full global output
	// (SDDMM output is indexed by global edge id, which shard CSRs carry),
	// so outRows is the global edge count and the executor owns the
	// one-time output zeroing. dstBase maps local destination rows onto
	// global rows for Dst-indexed inputs.
	outRows int
	dstBase int
	partial bool

	compiled *codegen.CompiledUDF
	match    codegen.Match

	edges    *partition.HilbertEdges // traversal order (Hilbert or row-major)
	tiles    []partition.Range       // output-axis tiles
	redTiles []partition.Range       // reduce-axis tiles (dot fast path only)
	redAxis  *expr.Axis              // the dot pattern's reduction axis

	// Engine state (see engine.go): uniform edge chunks over the traversal
	// order and the run-state freelist.
	edgeChunks []partition.Range
	states     chan *sddmmRunState

	gpu *sddmmGPU
	// breaker is the GPU circuit breaker (nil for CPU-target kernels or
	// when Options.BreakerThreshold is negative); see RunCtx.
	breaker *admission.Breaker
	// memEstimate is the run's resident-memory estimate charged against
	// the admission governor's budget.
	memEstimate int64

	// LastStats storage (see kernel.go).
	lastMu sync.Mutex
	last   RunStats
}

// BuildSDDMM builds a generalized SDDMM kernel. fds may be nil.
func BuildSDDMM(adj *sparse.CSR, udf *expr.UDF, inputs []*tensor.Tensor, fds *schedule.FDS, opts Options) (*SDDMMKernel, error) {
	return buildSDDMM(adj, udf, inputs, fds, opts, nil)
}

// buildSDDMM is BuildSDDMM plus the sharded-execution hook: a non-nil sh
// builds a partial kernel over one shard of a larger graph (CPU only),
// validating inputs against the global dimensions and sizing the output
// for the global edge count.
func buildSDDMM(adj *sparse.CSR, udf *expr.UDF, inputs []*tensor.Tensor, fds *schedule.FDS, opts Options, sh *shardSpec) (*SDDMMKernel, error) {
	tracing := telemetry.TraceActive()
	var buildStart, stepStart time.Time
	if tracing {
		buildStart = time.Now()
	}
	if err := adj.Validate(); err != nil {
		return nil, fmt.Errorf("core: invalid adjacency: %w", err)
	}
	if len(udf.OutAxes) == 0 {
		return nil, fmt.Errorf("core: UDF must have at least one output axis")
	}
	if err := fds.Validate(udf); err != nil {
		return nil, err
	}
	bindRows, bindCols, bindNNZ := adj.NumRows, adj.NumCols, int64(adj.NNZ())
	if sh != nil {
		if opts.Target != CPU {
			return nil, fmt.Errorf("core: sharded kernels run on CPU only")
		}
		bindRows, bindCols, bindNNZ = sh.globalRows, sh.globalCols, sh.globalNNZ
	}
	if err := validateBindings(bindRows, bindCols, bindNNZ, udf, inputs); err != nil {
		return nil, err
	}
	if tracing {
		stepStart = time.Now()
	}
	compiled, err := codegen.Compile(udf, inputs)
	if err != nil {
		return nil, err
	}
	if tracing {
		telemetry.RecordSpan("sddmm.lower", 0, stepStart, time.Since(stepStart), "out_len", int64(compiled.OutLen()), "", 0, 1)
	}
	k := &SDDMMKernel{
		adj:      adj,
		opts:     opts,
		outLen:   compiled.OutLen(),
		outRows:  adj.NNZ(),
		compiled: compiled,
		match:    codegen.Recognize(udf, inputs),
	}
	if sh != nil {
		k.outRows = int(sh.globalNNZ)
		k.dstBase, k.partial = sh.dstBase, true
	}
	k.tiles = partition.FeatureTiles(k.outLen, fds.SplitFactor(udf.OutAxes[0]))

	// Reduce-axis tiling applies to the dot fast path: processing k in
	// tiles keeps both operands' working sets cache-resident (Figure 8's
	// reduce-axis split).
	k.redAxis = findReduceAxis(udf.Body)
	d := 0
	if k.redAxis != nil {
		d = k.redAxis.Extent
	}
	if k.match.Pattern == codegen.DotSrcDst && d > 0 {
		k.redTiles = partition.FeatureTiles(d, fds.SplitFactor(k.redAxis))
	}

	if tracing {
		stepStart = time.Now()
	}
	switch opts.Target {
	case CPU:
		if opts.Hilbert {
			k.edges = partition.Hilbert(adj)
		} else {
			k.edges = partition.RowMajorEdges(adj)
		}
	case GPU:
		k.edges = partition.RowMajorEdges(adj)
		k.gpu = buildSDDMMGPU(k, udf, fds)
		if opts.BreakerThreshold >= 0 {
			k.breaker = admission.NewBreaker(opts.BreakerThreshold, opts.BreakerCooldown, sddmmMetrics.breakerHook())
		}
	default:
		return nil, fmt.Errorf("core: unknown target %d", opts.Target)
	}

	// Admission memory estimate: the per-edge output surface in float32
	// bytes dominates SDDMM's resident cost.
	k.memEstimate = 4 * int64(adj.NNZ()) * int64(k.outLen)

	// Engine schedule: SDDMM phases have uniform per-edge cost, so chunks
	// split the traversal order evenly; balance comes from the pool's
	// dynamic dequeue.
	nnz := adj.NNZ()
	k.edgeChunks = uniformChunks(nnz, numChunksFor(max(opts.NumThreads, 1), nnz, nnz))
	k.states = make(chan *sddmmRunState, runStatePoolCap)
	if tracing {
		telemetry.RecordSpan("sddmm.partition", 0, stepStart, time.Since(stepStart), "chunks", int64(len(k.edgeChunks)), "tiles", int64(len(k.tiles)), 2)
	}

	// Pre-create one run state (and GPU launch state) so scratch is
	// allocated at build time and the first Run is already allocation-free;
	// this also starts the shared worker pool before any run executes.
	k.states <- k.newRunState()
	if k.gpu != nil {
		k.gpu.states <- k.newGPULaunch()
	}
	if tracing {
		telemetry.RecordSpan("sddmm.build", 0, buildStart, time.Since(buildStart), "rows", int64(adj.NumRows), "nnz", int64(adj.NNZ()), 2)
	}
	return k, nil
}

// findReduceAxis returns the axis of the outermost Reduce node, or nil.
func findReduceAxis(e expr.Expr) *expr.Axis {
	switch n := e.(type) {
	case *expr.Reduce:
		return n.Axis
	case *expr.Unary:
		return findReduceAxis(n.A)
	case *expr.Binary:
		if a := findReduceAxis(n.A); a != nil {
			return a
		}
		return findReduceAxis(n.B)
	}
	return nil
}

// OutShape returns the required output tensor shape (the global edge
// count for a sharded partial kernel).
func (k *SDDMMKernel) OutShape() (rows, cols int) { return k.outRows, k.outLen }

// Pattern returns the recognized UDF pattern.
func (k *SDDMMKernel) Pattern() string { return k.match.Pattern.String() }

// Run executes the kernel into out, an [NNZ, outLen] tensor.
func (k *SDDMMKernel) Run(out *tensor.Tensor) (RunStats, error) {
	return k.RunCtx(context.Background(), out)
}

// RunCtx executes the kernel into out under ctx and the kernel's serving
// policy; see SpMMKernel.RunCtx for the governed execution semantics
// (admission, deadlines, circuit breaker, stall watchdog, retries) — the
// two templates behave identically.
func (k *SDDMMKernel) RunCtx(ctx context.Context, out *tensor.Tensor) (RunStats, error) {
	if out.Dim(0) != k.outRows || out.Len() != k.outRows*k.outLen {
		return RunStats{}, fmt.Errorf("core: SDDMM output shape %v, want [%d, %d]", out.Shape(), k.outRows, k.outLen)
	}
	if err := ctx.Err(); err != nil {
		return RunStats{}, err
	}
	gov := admission.Resolve(k.opts.Admission)
	if k.opts.Deadline > 0 {
		dctx, cancel := context.WithTimeout(ctx, k.opts.Deadline)
		defer cancel()
		ctx = dctx
	}
	tk, err := gov.Admit(ctx, k.memEstimate)
	if err != nil {
		return RunStats{}, err
	}
	stats, err := k.runAttempts(ctx, out, tk.Queued())
	gov.Release(tk)
	return stats, err
}

// runAttempts drives runAttempt under the kernel's retry policy.
func (k *SDDMMKernel) runAttempts(ctx context.Context, out *tensor.Tensor, queued time.Duration) (RunStats, error) {
	for attempt := 0; ; attempt++ {
		stats, err := k.runAttempt(ctx, out, queued, attempt)
		if err == nil || attempt >= k.opts.Retries || !retryable(err) || ctx.Err() != nil {
			return stats, err
		}
		admission.RecordRetry()
		if !admission.SleepBackoff(ctx, attempt) {
			return stats, err
		}
	}
}

// runAttempt is one execution attempt; see SpMMKernel.runAttempt.
func (k *SDDMMKernel) runAttempt(ctx context.Context, out *tensor.Tensor, queued time.Duration, attempt int) (RunStats, error) {
	metricsOn := k.opts.Metrics || telemetry.Enabled()
	tracing := telemetry.TraceActive()
	start := time.Now()
	stats := RunStats{Queued: queued, Retries: attempt}
	if k.opts.Target == GPU && k.breaker.Allow() {
		gstats, err := k.runGPU(ctx, out)
		if err == nil {
			k.breaker.RecordSuccess()
			gstats.Queued, gstats.Retries = queued, attempt
			stats = gstats
		} else {
			if ctxDone(ctx, err) {
				k.breaker.RecordCancel()
				return RunStats{}, err
			}
			k.breaker.RecordFailure()
			if k.opts.NoFallback {
				return RunStats{}, err
			}
			// Graceful degradation: one retry on the CPU path.
			stats = RunStats{Queued: queued, Retries: attempt}
			if cpuErr := k.runCPU(ctx, out, &stats); cpuErr != nil {
				return RunStats{}, fmt.Errorf("core: gpu run failed (%v); cpu fallback failed: %w", err, cpuErr)
			}
			stats.Fallback = true
			stats.FallbackReason = err.Error()
			if metricsOn {
				sddmmMetrics.recordFallback(false)
			}
			if tracing {
				telemetry.RecordInstant("sddmm.fallback", 0, "run_stage", 1, 1)
			}
		}
	} else {
		if err := k.runCPU(ctx, out, &stats); err != nil {
			return RunStats{}, err
		}
		if k.opts.Target == GPU {
			// The circuit breaker is open: routed straight to CPU without
			// paying for a doomed device attempt.
			stats.Fallback = true
			stats.FallbackReason = "gpu circuit breaker open"
			if metricsOn {
				sddmmMetrics.recordBreakerReroute()
			}
			if tracing {
				telemetry.RecordInstant("sddmm.fallback", 0, "breaker_open", 1, 1)
			}
		}
	}
	if k.breaker != nil {
		stats.BreakerState = k.breaker.State().String()
	}
	if k.opts.CheckNumerics {
		if err := checkNumerics("sddmm", out); err != nil {
			return stats, err
		}
	}
	finishRun("sddmm.run", sddmmMetrics, k.opts.Target, &k.lastMu, &k.last, start, &stats, metricsOn, tracing)
	return stats, nil
}

// runCPU executes the multi-threaded CPU schedule, splitting the traversal
// order (Hilbert or row-major) across workers. The persistent engine
// (engine.go) dispatches edges as chunks on the shared worker pool with
// zero per-run allocation; Options.LegacySched selects the pre-engine
// per-run-goroutine scheduler instead.
func (k *SDDMMKernel) runCPU(ctx context.Context, out *tensor.Tensor, stats *RunStats) error {
	if k.opts.LegacySched {
		err := k.runCPULegacy(ctx, out)
		if err == nil {
			// The legacy scheduler has no chunk accounting; report the
			// nominal traversal count (every tile revisits every edge).
			tiles := len(k.tiles)
			if k.match.Pattern == codegen.DotSrcDst && len(k.redTiles) > 0 {
				tiles = len(k.redTiles)
			}
			stats.EdgesProcessed = uint64(k.adj.NNZ()) * uint64(tiles)
		}
		return err
	}
	return k.runCPUEngine(ctx, out, stats)
}

// runCPULegacy is the pre-engine scheduler, kept as the measured ablation
// baseline for the engine.
func (k *SDDMMKernel) runCPULegacy(ctx context.Context, out *tensor.Tensor) error {
	rc := newRunControl(ctx)
	threads := max(k.opts.NumThreads, 1)
	nnz := k.adj.NNZ()
	ed := k.edges

	if k.match.Pattern == codegen.DotSrcDst {
		// Dot fast path with reduce-axis tiling: tiles outer, edges
		// inner, accumulating partial dot products into the output.
		x, y := k.match.X, k.match.Y
		xd, xs := x.Data(), x.RowStride()
		yd, ys := y.Data(), y.RowStride()
		odata := out.Data()
		if !k.partial {
			out.Zero()
		}
		for kti, kt := range k.redTiles {
			if rc.stop() {
				return rc.verdict()
			}
			klo, khi := kt.Lo, kt.Hi
			site := workerSite{kernel: "sddmm", target: CPU, tile: kti, part: -1}
			parallelFor(rc, site, nnz, threads, func(_, elo, ehi int) {
				faultinject.Hit(faultinject.SiteSDDMMCPUWorker, rc.done, rc.quit)
				for clo := elo; clo < ehi; clo += cancelChunk {
					if rc.stop() {
						return
					}
					for i := clo; i < min(clo+cancelChunk, ehi); i++ {
						u, v := int(ed.Col[i]), int(ed.Row[i])+k.dstBase
						xrow := xd[u*xs+klo : u*xs+khi]
						yrow := yd[v*ys+klo : v*ys+khi]
						var s float32
						for f := range xrow {
							s += xrow[f] * yrow[f]
						}
						odata[ed.EID[i]] += s
					}
				}
				faultinject.CorruptFloats(faultinject.SiteSDDMMCPUOutput, odata[elo:ehi])
			})
		}
		return rc.verdict()
	}

	// Generic path: evaluate the compiled UDF per edge per output tile,
	// writing directly into the edge's output row (no aggregation in
	// SDDMM).
	ostride := out.RowStride()
	odata := out.Data()
	for ti, tile := range k.tiles {
		if rc.stop() {
			return rc.verdict()
		}
		lo, hi := tile.Lo, tile.Hi
		site := workerSite{kernel: "sddmm", target: CPU, tile: ti, part: -1}
		parallelFor(rc, site, nnz, threads, func(_, elo, ehi int) {
			faultinject.Hit(faultinject.SiteSDDMMCPUWorker, rc.done, rc.quit)
			env := k.compiled.NewEnv()
			for clo := elo; clo < ehi; clo += cancelChunk {
				if rc.stop() {
					return
				}
				for i := clo; i < min(clo+cancelChunk, ehi); i++ {
					eid := int(ed.EID[i])
					k.compiled.Eval(env, ed.Col[i], ed.Row[i]+int32(k.dstBase), ed.EID[i], odata[eid*ostride+lo:eid*ostride+hi], lo, hi)
				}
			}
			faultinject.CorruptFloats(faultinject.SiteSDDMMCPUOutput, odata[elo*ostride:ehi*ostride])
		})
	}
	return rc.verdict()
}
