package core

import (
	"math/rand"
	"testing"

	"featgraph/internal/cudasim"
	"featgraph/internal/expr"
	"featgraph/internal/schedule"
	"featgraph/internal/sparse"
	"featgraph/internal/tensor"
)

// Property-based testing over randomly generated UDFs: every lowering path
// (generic CPU, tiled, partitioned, multi-threaded, GPU) must agree with
// the reference evaluation regardless of the expression's shape. This is
// the broadest guard against codegen or template bugs.

// udfCase is a randomly generated UDF with bound inputs.
type udfCase struct {
	udf    *expr.UDF
	inputs []*tensor.Tensor
}

// genUDF builds a random UDF over vertex features X [n,d], edge features
// E [m,d], and a weight matrix W [d,d2]. With probability ~1/2 the body is
// an elementwise tree over the feature axis; otherwise it reduces over a
// k axis through W.
func genUDF(rng *rand.Rand, n, m, d int) udfCase {
	b := expr.NewBuilder()
	x := b.Placeholder("X", n, d)
	e := b.Placeholder("E", m, d)

	mk := func(shape ...int) *tensor.Tensor {
		t := tensor.New(shape...)
		// Values in [0.5, 1.5] keep Div well-conditioned.
		t.FillUniform(rng, 0.5, 1.5)
		return t
	}
	xt, et := mk(n, d), mk(m, d)

	if rng.Intn(2) == 0 {
		// Elementwise UDF over output axis i.
		i := b.OutAxis("i", d)
		atoms := []expr.Expr{
			x.At(expr.Src, i),
			x.At(expr.Dst, i),
			e.At(expr.EID, i),
			expr.C(rng.Float32() + 0.5),
		}
		body := randTree(rng, atoms, 3)
		return udfCase{b.UDF(body, i), []*tensor.Tensor{xt, et}}
	}

	// Reduction UDF: out[i] = reduce_k(tree(k) * W[k,i]), optionally
	// post-processed elementwise.
	d2 := 1 + rng.Intn(6)
	w := b.Placeholder("W", d, d2)
	wt := mk(d, d2)
	i := b.OutAxis("i", d2)
	k := b.ReduceAxis("k", d)
	atoms := []expr.Expr{
		x.At(expr.Src, k),
		x.At(expr.Dst, k),
		e.At(expr.EID, k),
	}
	inner := expr.Mul(randTree(rng, atoms, 2), w.At(k, i))
	var body expr.Expr
	if rng.Intn(2) == 0 {
		body = expr.Sum(k, inner)
	} else {
		body = expr.MaxOver(k, inner)
	}
	if rng.Intn(2) == 0 {
		body = expr.Max(body, expr.C(0))
	}
	return udfCase{b.UDF(body, i), []*tensor.Tensor{xt, et, wt}}
}

// randTree builds a random binary expression tree of the given depth over
// the atom set. Division is restricted to constant divisors to avoid
// blow-ups.
func randTree(rng *rand.Rand, atoms []expr.Expr, depth int) expr.Expr {
	if depth == 0 || rng.Intn(3) == 0 {
		return atoms[rng.Intn(len(atoms))]
	}
	a := randTree(rng, atoms, depth-1)
	b := randTree(rng, atoms, depth-1)
	var node expr.Expr
	switch rng.Intn(5) {
	case 0:
		node = expr.Add(a, b)
	case 1:
		node = expr.Sub(a, b)
	case 2:
		node = expr.Mul(a, b)
	case 3:
		node = expr.Max(a, b)
	default:
		node = expr.Min(a, b)
	}
	// Occasionally wrap in a total (never-NaN) unary.
	switch rng.Intn(8) {
	case 0:
		node = expr.Neg(node)
	case 1:
		node = expr.Abs(node)
	case 2:
		node = expr.Sigmoid(node)
	case 3:
		node = expr.Tanh(node)
	}
	return node
}

func TestRandomUDFSpMMAllPathsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	dev := cudasim.NewDevice(cudasim.Config{NumSMs: 2})
	aggs := []AggOp{AggSum, AggMax, AggMin, AggMean}
	for trial := 0; trial < 25; trial++ {
		n := 8 + rng.Intn(20)
		adj := sparse.Random(rng, n, n, 1+rng.Intn(5))
		d := []int{4, 8, 12}[rng.Intn(3)]
		c := genUDF(rng, n, adj.NNZ(), d)
		agg := aggs[rng.Intn(len(aggs))]

		want, err := ReferenceSpMM(adj, c.udf, c.inputs, agg)
		if err != nil {
			t.Fatalf("trial %d: reference: %v", trial, err)
		}
		outAxis := c.udf.OutAxes[0]
		configs := []struct {
			name string
			fds  *schedule.FDS
			opts Options
		}{
			{"cpu-plain", nil, Options{Target: CPU}},
			{"cpu-tiled", schedule.New().Split(outAxis, 1+rng.Intn(4)), Options{Target: CPU}},
			{"cpu-part-mt", nil, Options{Target: CPU, GraphPartitions: 1 + rng.Intn(5), NumThreads: 1 + rng.Intn(4)}},
			{"gpu", schedule.New().Bind(outAxis, schedule.ThreadX), Options{Target: GPU, Device: dev}},
		}
		for _, cfg := range configs {
			k, err := BuildSpMM(adj, c.udf, c.inputs, agg, cfg.fds, cfg.opts)
			if err != nil {
				t.Fatalf("trial %d %s: build: %v\nudf: %s", trial, cfg.name, err, c.udf)
			}
			out := tensor.New(adj.NumRows, c.udf.OutLen())
			if _, err := k.Run(out); err != nil {
				t.Fatalf("trial %d %s: run: %v", trial, cfg.name, err)
			}
			if !out.AllClose(want, 1e-2) {
				t.Fatalf("trial %d %s (agg %v, pattern %s): max diff %v\nudf: %s",
					trial, cfg.name, agg, k.Pattern(), out.MaxAbsDiff(want), c.udf)
			}
		}
	}
}

func TestRandomUDFSDDMMAllPathsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	dev := cudasim.NewDevice(cudasim.Config{NumSMs: 2})
	for trial := 0; trial < 25; trial++ {
		n := 8 + rng.Intn(20)
		adj := sparse.Random(rng, n, n, 1+rng.Intn(5))
		d := []int{4, 8, 12}[rng.Intn(3)]
		c := genUDF(rng, n, adj.NNZ(), d)

		want, err := ReferenceSDDMM(adj, c.udf, c.inputs)
		if err != nil {
			t.Fatalf("trial %d: reference: %v", trial, err)
		}
		outAxis := c.udf.OutAxes[0]
		configs := []struct {
			name string
			fds  *schedule.FDS
			opts Options
		}{
			{"cpu-plain", nil, Options{Target: CPU}},
			{"cpu-hilbert-mt", nil, Options{Target: CPU, Hilbert: true, NumThreads: 1 + rng.Intn(4)}},
			{"cpu-tiled", schedule.New().Split(outAxis, 1+rng.Intn(4)), Options{Target: CPU}},
			{"gpu", schedule.New().Bind(outAxis, schedule.ThreadX), Options{Target: GPU, Device: dev}},
		}
		for _, cfg := range configs {
			k, err := BuildSDDMM(adj, c.udf, c.inputs, cfg.fds, cfg.opts)
			if err != nil {
				t.Fatalf("trial %d %s: build: %v\nudf: %s", trial, cfg.name, err, c.udf)
			}
			out := tensor.New(adj.NNZ(), c.udf.OutLen())
			if _, err := k.Run(out); err != nil {
				t.Fatalf("trial %d %s: run: %v", trial, cfg.name, err)
			}
			if !out.AllClose(want, 1e-2) {
				t.Fatalf("trial %d %s (pattern %s): max diff %v\nudf: %s",
					trial, cfg.name, k.Pattern(), out.MaxAbsDiff(want), c.udf)
			}
		}
	}
}
