package core

import (
	"context"
	"errors"

	"featgraph/internal/admission"
	"featgraph/internal/codegen"
	"featgraph/internal/cudasim"
	"featgraph/internal/expr"
	"featgraph/internal/schedule"
	"featgraph/internal/tensor"
	"featgraph/internal/workpool"
)

// sddmmGPU holds the GPU-side schedule of an SDDMM kernel: the edge
// parallelization of Figure 7b, where each block processes a set of edges
// (non-zeros) and the threads of a block cooperate on each edge's feature
// computation — by tree reduction for dot products when the FDS asks for
// it (Figure 4a), or across output elements otherwise.
type sddmmGPU struct {
	dev        *cudasim.Device
	treeReduce bool
	featPar    bool
	bodyCost   uint64

	states chan *sddmmGPULaunch // reusable launch-state freelist
}

// sddmmGPULaunch is one GPU execution's worth of reusable state; see
// spmmGPULaunch for the pattern.
type sddmmGPULaunch struct {
	k       *SDDMMKernel
	out     *tensor.Tensor
	blocks  int
	dot     bool
	kernel  func(*cudasim.Block)
	scratch []*sddmmGPUScratch
	// beacon is the stall watchdog's progress counter (see spmmGPULaunch).
	beacon admission.Beacon
}

// sddmmGPUScratch is per-runner-slot state: the compiled-UDF environment
// for the generic path and the tree-reduction partials buffer for the dot
// path (sized to the block dimension on first use, regrown if it changes).
type sddmmGPUScratch struct {
	env      *codegen.Env
	partials []float32
}

func buildSDDMMGPU(k *SDDMMKernel, udf *expr.UDF, fds *schedule.FDS) *sddmmGPU {
	g := &sddmmGPU{
		dev:      k.opts.device(),
		bodyCost: codegen.EstimateCostPerElem(udf),
		states:   make(chan *sddmmGPULaunch, runStatePoolCap),
	}
	if k.redAxis != nil && fds.HasTreeReduce(k.redAxis) {
		g.treeReduce = true
	}
	if r, ok := fds.Binding(udf.OutAxes[0]); ok && r == schedule.ThreadX {
		g.featPar = true
	}
	return g
}

func (k *SDDMMKernel) newGPULaunch() *sddmmGPULaunch {
	st := &sddmmGPULaunch{k: k, scratch: make([]*sddmmGPUScratch, workpool.Default().MaxRunners())}
	st.kernel = st.block
	return st
}

func (g *sddmmGPU) getLaunch(k *SDDMMKernel) *sddmmGPULaunch {
	select {
	case st := <-g.states:
		return st
	default:
		return k.newGPULaunch()
	}
}

func (g *sddmmGPU) putLaunch(st *sddmmGPULaunch) {
	st.out = nil
	select {
	case g.states <- st:
	default:
	}
}

// block runs one grid block on the dot or generic path with the slot's
// reusable scratch.
func (st *sddmmGPULaunch) block(b *cudasim.Block) {
	sc := st.scratch[b.Slot()]
	if sc == nil {
		sc = &sddmmGPUScratch{env: st.k.compiled.NewEnv()}
		st.scratch[b.Slot()] = sc
	}
	if st.dot {
		st.k.gpuDotBlock(b, st.out, st.blocks, sc)
	} else {
		st.k.gpuGenericBlock(b, st.out, st.blocks, sc)
	}
}

// gpuLaunchDims resolves the SDDMM grid: blocks cover edge groups, threads
// cover the reduction width (tree reduction) or the output tile.
func (k *SDDMMKernel) gpuLaunchDims() (blocks, threads int) {
	nnz := k.adj.NNZ()
	blocks = k.opts.NumBlocks
	if blocks <= 0 {
		blocks = min(nnz, 4096)
	}
	blocks = min(blocks, nnz)
	threads = k.opts.ThreadsPerBlock
	if threads <= 0 {
		switch {
		case k.gpu.treeReduce && k.redAxis != nil:
			threads = min(nextPow2(k.redAxis.Extent), 256)
		case k.gpu.featPar:
			threads = min(nextPow2(k.outLen), 256)
		default:
			threads = 32
		}
	}
	return blocks, min(threads, 1024)
}

// wrapSDDMMLaunchErr rewrites a device panic into a *KernelError locating
// the failing block; other launch errors (cancellation) pass through.
func wrapSDDMMLaunchErr(err error) error {
	var kpe *cudasim.KernelPanicError
	if errors.As(err, &kpe) {
		return &KernelError{Kernel: "sddmm", Target: GPU, Worker: kpe.Block, Tile: -1, Part: -1, Value: kpe.Value}
	}
	return err
}

func (k *SDDMMKernel) runGPU(ctx context.Context, out *tensor.Tensor) (RunStats, error) {
	nnz := k.adj.NNZ()
	if nnz == 0 {
		return RunStats{}, ctx.Err()
	}
	blocks, threads := k.gpuLaunchDims()
	st := k.gpu.getLaunch(k)
	defer k.gpu.putLaunch(st)
	if gov := admission.Resolve(k.opts.Admission); gov.WatchdogEnabled() {
		wctx, cancel := context.WithCancelCause(ctx)
		defer cancel(nil)
		defer gov.Watch(cancel, &st.beacon, "sddmm/gpu")()
		ctx = wctx
	}
	st.out = out
	st.blocks = blocks
	st.dot = k.match.Pattern == codegen.DotSrcDst

	stats, err := k.gpu.dev.LaunchCtx(ctx, cudasim.LaunchConfig{Blocks: blocks, ThreadsPerBlock: threads, Progress: st.beacon.Counter()}, st.kernel)
	if err != nil {
		return RunStats{}, wrapSDDMMLaunchErr(stallCause(ctx, err))
	}
	// Nominal traversal count: the single launch visits every edge once.
	return RunStats{SimCycles: stats.SimCycles, EdgesProcessed: uint64(nnz)}, nil
}

// gpuDotBlock runs the dot fast path for one block's edges.
func (k *SDDMMKernel) gpuDotBlock(b *cudasim.Block, out *tensor.Tensor, blocks int, sc *sddmmGPUScratch) {
	nnz := k.adj.NNZ()
	ed := k.edges
	odata := out.Data()
	x, y := k.match.X, k.match.Y
	xd, xs := x.Data(), x.RowStride()
	yd, ys := y.Data(), y.RowStride()
	d := k.redAxis.Extent
	tree := k.gpu.treeReduce
	var partials []float32
	if tree {
		if cap(sc.partials) < b.Dim() {
			sc.partials = make([]float32, b.Dim())
		}
		partials = sc.partials[:b.Dim()]
	}
	for e := b.Idx(); e < nnz; e += blocks {
		if b.Cancelled() {
			return
		}
		u, v := int(ed.Col[e]), int(ed.Row[e])
		xrow := xd[u*xs : u*xs+d]
		yrow := yd[v*ys : v*ys+d]
		var s float32
		if tree {
			// Threads accumulate strided partials, then combine
			// with the log-depth tree (Figure 7b).
			clear(partials)
			dim := b.Dim()
			for t := 0; t < dim; t++ {
				var p float32
				for f := t; f < d; f += dim {
					p += xrow[f] * yrow[f]
				}
				partials[t] = p
			}
			s = cudasim.TreeReduceSum(partials)
			b.ChargeParallel(d, 2*cudasim.CostGlobal+cudasim.CostFLOP)
			b.ChargeTreeReduce(b.Dim())
		} else {
			// The naive strategy: the whole dot product on one
			// thread (what Gunrock does; Figure 12's baseline).
			for f := 0; f < d; f++ {
				s += xrow[f] * yrow[f]
			}
			b.Charge(uint64(d) * (2*cudasim.CostGlobal + cudasim.CostFLOP))
		}
		odata[ed.EID[e]] = s
		b.Charge(cudasim.CostGlobal)
	}
}

// gpuGenericBlock evaluates the compiled UDF for one block's edges, output
// elements across threads when the FDS binds the output axis.
func (k *SDDMMKernel) gpuGenericBlock(b *cudasim.Block, out *tensor.Tensor, blocks int, sc *sddmmGPUScratch) {
	nnz := k.adj.NNZ()
	ed := k.edges
	odata, ostride := out.Data(), out.RowStride()
	featPar := k.gpu.featPar
	bodyCost := k.gpu.bodyCost
	outLen := k.outLen
	env := sc.env
	for e := b.Idx(); e < nnz; e += blocks {
		if b.Cancelled() {
			return
		}
		eid := int(ed.EID[e])
		k.compiled.Eval(env, ed.Col[e], ed.Row[e], ed.EID[e], odata[eid*ostride:eid*ostride+outLen], 0, outLen)
		if featPar {
			b.ChargeParallel(outLen, bodyCost+cudasim.CostGlobal)
		} else {
			b.Charge(uint64(outLen) * (bodyCost + cudasim.CostGlobal))
		}
	}
}
