package core

import (
	"context"
	"errors"

	"featgraph/internal/codegen"
	"featgraph/internal/cudasim"
	"featgraph/internal/expr"
	"featgraph/internal/schedule"
	"featgraph/internal/tensor"
)

// sddmmGPU holds the GPU-side schedule of an SDDMM kernel: the edge
// parallelization of Figure 7b, where each block processes a set of edges
// (non-zeros) and the threads of a block cooperate on each edge's feature
// computation — by tree reduction for dot products when the FDS asks for
// it (Figure 4a), or across output elements otherwise.
type sddmmGPU struct {
	dev        *cudasim.Device
	treeReduce bool
	featPar    bool
	bodyCost   uint64
}

func buildSDDMMGPU(k *SDDMMKernel, udf *expr.UDF, fds *schedule.FDS) *sddmmGPU {
	g := &sddmmGPU{
		dev:      k.opts.device(),
		bodyCost: codegen.EstimateCostPerElem(udf),
	}
	if k.redAxis != nil && fds.HasTreeReduce(k.redAxis) {
		g.treeReduce = true
	}
	if r, ok := fds.Binding(udf.OutAxes[0]); ok && r == schedule.ThreadX {
		g.featPar = true
	}
	return g
}

// gpuLaunchDims resolves the SDDMM grid: blocks cover edge groups, threads
// cover the reduction width (tree reduction) or the output tile.
func (k *SDDMMKernel) gpuLaunchDims() (blocks, threads int) {
	nnz := k.adj.NNZ()
	blocks = k.opts.NumBlocks
	if blocks <= 0 {
		blocks = min(nnz, 4096)
	}
	blocks = min(blocks, nnz)
	threads = k.opts.ThreadsPerBlock
	if threads <= 0 {
		switch {
		case k.gpu.treeReduce && k.redAxis != nil:
			threads = min(nextPow2(k.redAxis.Extent), 256)
		case k.gpu.featPar:
			threads = min(nextPow2(k.outLen), 256)
		default:
			threads = 32
		}
	}
	return blocks, min(threads, 1024)
}

// wrapSDDMMLaunchErr rewrites a device panic into a *KernelError locating
// the failing block; other launch errors (cancellation) pass through.
func wrapSDDMMLaunchErr(err error) error {
	var kpe *cudasim.KernelPanicError
	if errors.As(err, &kpe) {
		return &KernelError{Kernel: "sddmm", Target: GPU, Worker: kpe.Block, Tile: -1, Part: -1, Value: kpe.Value}
	}
	return err
}

func (k *SDDMMKernel) runGPU(ctx context.Context, out *tensor.Tensor) (RunStats, error) {
	nnz := k.adj.NNZ()
	if nnz == 0 {
		return RunStats{}, ctx.Err()
	}
	blocks, threads := k.gpuLaunchDims()
	ed := k.edges
	odata, ostride := out.Data(), out.RowStride()
	var total uint64

	if k.match.Pattern == codegen.DotSrcDst {
		x, y := k.match.X, k.match.Y
		xd, xs := x.Data(), x.RowStride()
		yd, ys := y.Data(), y.RowStride()
		d := k.redAxis.Extent
		tree := k.gpu.treeReduce
		stats, err := k.gpu.dev.LaunchCtx(ctx, cudasim.LaunchConfig{Blocks: blocks, ThreadsPerBlock: threads}, func(b *cudasim.Block) {
			var partials []float32
			if tree {
				partials = make([]float32, b.Dim())
			}
			for e := b.Idx(); e < nnz; e += blocks {
				if b.Cancelled() {
					return
				}
				u, v := int(ed.Col[e]), int(ed.Row[e])
				xrow := xd[u*xs : u*xs+d]
				yrow := yd[v*ys : v*ys+d]
				var s float32
				if tree {
					// Threads accumulate strided partials, then combine
					// with the log-depth tree (Figure 7b).
					clear(partials)
					dim := b.Dim()
					for t := 0; t < dim; t++ {
						var p float32
						for f := t; f < d; f += dim {
							p += xrow[f] * yrow[f]
						}
						partials[t] = p
					}
					s = cudasim.TreeReduceSum(partials)
					b.ChargeParallel(d, 2*cudasim.CostGlobal+cudasim.CostFLOP)
					b.ChargeTreeReduce(b.Dim())
				} else {
					// The naive strategy: the whole dot product on one
					// thread (what Gunrock does; Figure 12's baseline).
					for f := 0; f < d; f++ {
						s += xrow[f] * yrow[f]
					}
					b.Charge(uint64(d) * (2*cudasim.CostGlobal + cudasim.CostFLOP))
				}
				odata[ed.EID[e]] = s
				b.Charge(cudasim.CostGlobal)
			}
		})
		if err != nil {
			return RunStats{}, wrapSDDMMLaunchErr(err)
		}
		total += stats.SimCycles
		return RunStats{SimCycles: total}, nil
	}

	// Generic path: each block evaluates its edges' UDF, output elements
	// across threads when the FDS binds the output axis.
	featPar := k.gpu.featPar
	bodyCost := k.gpu.bodyCost
	outLen := k.outLen
	stats, err := k.gpu.dev.LaunchCtx(ctx, cudasim.LaunchConfig{Blocks: blocks, ThreadsPerBlock: threads}, func(b *cudasim.Block) {
		env := k.compiled.NewEnv()
		for e := b.Idx(); e < nnz; e += blocks {
			if b.Cancelled() {
				return
			}
			eid := int(ed.EID[e])
			k.compiled.Eval(env, ed.Col[e], ed.Row[e], ed.EID[e], odata[eid*ostride:eid*ostride+outLen], 0, outLen)
			if featPar {
				b.ChargeParallel(outLen, bodyCost+cudasim.CostGlobal)
			} else {
				b.Charge(uint64(outLen) * (bodyCost + cudasim.CostGlobal))
			}
		}
	})
	if err != nil {
		return RunStats{}, wrapSDDMMLaunchErr(err)
	}
	total += stats.SimCycles
	return RunStats{SimCycles: total}, nil
}
