// Overload-safe serving glue between the kernel templates and the
// admission package: error classification for the retry loop and the
// mapping of watchdog cancellations back to their structured cause.
//
// Both templates' RunCtx follow the same governed shape:
//
//	admit (concurrency/memory/deadline)  ->  attempt loop  ->  release
//
// where each attempt is the pre-admission RunCtx body (GPU with breaker
// and CPU fallback, or CPU engine) and the loop retries retryable
// failures with jittered backoff up to Options.Retries extra times.
package core

import (
	"context"
	"errors"

	"featgraph/internal/admission"
)

// retryable reports whether a failed attempt is worth retrying: watchdog
// stalls, recovered worker panics, and numeric faults are transient (or
// injected); context cancellation, deadline expiry, and admission
// rejections are not.
func retryable(err error) bool {
	var se *admission.StallError
	var ke *KernelError
	var ne *NumericError
	return errors.As(err, &se) || errors.As(err, &ke) || errors.As(err, &ne)
}

// stallCause substitutes the watchdog's *StallError for the bare
// context.Canceled a watchdog-cancelled run surfaces as. ctx must be the
// watchdog-wrapped context. Errors with their own identity (worker
// failures, panics) pass through untouched, as does a cancellation that
// originated from the caller rather than the watchdog.
func stallCause(ctx context.Context, err error) error {
	if err == nil || !errors.Is(err, context.Canceled) {
		return err
	}
	var se *admission.StallError
	if cause := context.Cause(ctx); errors.As(cause, &se) {
		return se
	}
	return err
}
