// Package faultinject provides deterministic, site-keyed fault points for
// robustness testing of the kernel execution stack.
//
// Production code marks interesting locations with Hit (control faults:
// panics and stalls) and CorruptFloats (data faults: NaN poisoning). With no
// faults armed both calls reduce to a single atomic load, so the hooks stay
// in the worker loops permanently — the chaos-hook style of netflix-like
// fault testing, scaled down to a library. Tests arm faults at chosen sites:
//
//	defer faultinject.Arm(faultinject.SiteSpMMCPUWorker,
//		&faultinject.Fault{Kind: faultinject.Panic})()
//
// Firing is deterministic: each fault counts its hits, and hit i fires iff a
// 64-bit hash of (Seed, site, i) maps below Prob. The same arming therefore
// fires on the same hit indices in every run, independent of goroutine
// scheduling (which worker observes a given hit index may still vary, but
// the number of firings over N hits does not).
package faultinject

import (
	"errors"
	"fmt"
	"math"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"featgraph/internal/telemetry"
)

// mFired counts faults that actually triggered, process-wide. The counter
// is recorded only on the fire path (faults are armed, the experiment is
// already paying for injection), so the unarmed fast path stays one atomic
// load.
var mFired = telemetry.NewCounter("featgraph_faultinject_fired_total", "",
	"Injected faults that triggered (panic, stall, or NaN poisoning).")

// Kind selects a fault's effect.
type Kind int

const (
	// Panic panics with the fault's Value at the site (Hit).
	Panic Kind = iota
	// NaN poisons the first element of buffers passed to CorruptFloats.
	NaN
	// Stall blocks Hit until Delay elapses, the fault is disarmed, or one
	// of the caller's release channels closes — a slow worker, not a dead
	// one.
	Stall
	// Err makes CheckErr return an injected error at the site — the shape
	// of a failed syscall (short write, fsync failure, rename failure)
	// rather than a crashed goroutine. Hit and CorruptFloats ignore Err
	// faults.
	Err
	// Kill SIGKILLs the whole process at the site — no deferred cleanup,
	// no flushing, the same abruptness as a power cut. Crash-recovery
	// tests arm it in a helper child process to die at an exact point in
	// a commit protocol; whatever bytes earlier writes handed to the OS
	// survive, anything buffered in the process is lost.
	Kill
)

func (k Kind) String() string {
	switch k {
	case Panic:
		return "panic"
	case NaN:
		return "nan"
	case Stall:
		return "stall"
	case Err:
		return "err"
	case Kill:
		return "kill"
	}
	return "unknown"
}

// Fault is one armed fault. The zero value panics on every hit.
type Fault struct {
	Kind Kind
	// Prob is the per-hit firing probability; <= 0 or >= 1 fires on every
	// hit. Firing decisions are keyed by (Seed, site, hit index), not by a
	// random source, so they replay identically.
	Prob float64
	// Seed perturbs the firing hash so distinct experiments at one site can
	// select different hit subsets.
	Seed uint64
	// Value is the panic value for Panic faults; nil panics with a
	// descriptive string naming the site.
	Value any
	// Delay is how long a Stall fault blocks; 0 means 10ms.
	Delay time.Duration
	// MaxFires caps how many times the fault triggers over its lifetime;
	// 0 means unlimited. With MaxFires=1 a fault fires on its first
	// selected hit and then behaves as if unarmed — the shape retry tests
	// need ("first attempt fails, second succeeds") with full determinism.
	MaxFires uint64

	hits   atomic.Uint64
	fired  atomic.Uint64
	cancel chan struct{}
}

// Hits returns how many times the fault's site has been evaluated.
func (f *Fault) Hits() uint64 { return f.hits.Load() }

// Fired returns how many times the fault actually triggered.
func (f *Fault) Fired() uint64 { return f.fired.Load() }

// Sites instrumented by the kernel stack. The constants live here so tests
// target fault points without importing the instrumented packages' internals.
const (
	// SiteSpMMCPUWorker fires in every SpMM CPU worker goroutine, once per
	// (tile, partition) chunk it processes.
	SiteSpMMCPUWorker = "core/spmm/cpu-worker"
	// SiteSpMMCPUOutput is a data site over each SpMM worker's output rows.
	SiteSpMMCPUOutput = "core/spmm/cpu-output"
	// SiteSDDMMCPUWorker fires in every SDDMM CPU worker goroutine.
	SiteSDDMMCPUWorker = "core/sddmm/cpu-worker"
	// SiteSDDMMCPUOutput is a data site over each SDDMM worker's output rows.
	SiteSDDMMCPUOutput = "core/sddmm/cpu-output"
	// SiteCudasimBlock fires at the start of every simulated-GPU block.
	SiteCudasimBlock = "cudasim/block"
	// SiteFusedAttnCPUWorker fires in every fused-attention CPU worker,
	// once per chunk it processes (forward and both backward phases).
	SiteFusedAttnCPUWorker = "core/fusedattn/cpu-worker"
	// SiteFusedAttnCPUOutput is a data site over each fused-attention
	// worker's output rows.
	SiteFusedAttnCPUOutput = "core/fusedattn/cpu-output"

	// Write-path sites instrumented by internal/durable's atomic writer.
	// Arming Err faults here simulates the three ways a crash can tear
	// persistent state: a write that stops partway, an fsync the kernel
	// rejects, and a rename that never lands.

	// SiteDurableTornWrite fires once per atomic file write, between
	// producing the payload and making it durable; when it fires the
	// writer truncates the temp file to half its length and returns the
	// injected error — the on-disk shape of a crash mid-write.
	SiteDurableTornWrite = "durable/torn-write"
	// SiteDurableFsync fires at the temp file's fsync.
	SiteDurableFsync = "durable/fsync"
	// SiteDurableRename fires at the temp→final rename.
	SiteDurableRename = "durable/rename"

	// Delta-log commit-path sites instrumented by internal/delta. Err
	// faults make each step fail cleanly; Kill faults die there outright,
	// which is how the kill-and-recover test reproduces a crash inside
	// every window of the commit protocol.

	// SiteDeltaWALAppend fires mid-record during a delta-log append: the
	// first half of the record has been handed to the OS, the rest has
	// not — the on-disk shape of a torn append.
	SiteDeltaWALAppend = "delta/wal-append"
	// SiteDeltaWALFsync fires after the record bytes are written, before
	// the log file's fsync.
	SiteDeltaWALFsync = "delta/wal-fsync"
	// SiteDeltaBaseSwap fires during compaction, after the new durable
	// base has been published but before the delta log is rewritten.
	SiteDeltaBaseSwap = "delta/base-swap"
	// SiteDeltaWALReset fires during compaction at the delta-log rewrite
	// (retained tail staged, rename not yet landed).
	SiteDeltaWALReset = "delta/wal-reset"
)

var (
	armed atomic.Int32
	mu    sync.RWMutex
	sites = map[string]*Fault{}
)

// Enabled reports whether any fault is armed. Instrumented code may use it
// to skip argument construction; Hit and CorruptFloats check it themselves.
func Enabled() bool { return armed.Load() > 0 }

// Arm activates f at site and returns a function that disarms it. Arming an
// already-armed site panics: overlapping experiments would make the
// deterministic hit counting meaningless.
func Arm(site string, f *Fault) func() {
	mu.Lock()
	defer mu.Unlock()
	if _, dup := sites[site]; dup {
		panic("faultinject: site already armed: " + site)
	}
	f.cancel = make(chan struct{})
	sites[site] = f
	armed.Add(1)
	return func() { Disarm(site) }
}

// Disarm deactivates the fault at site, releasing any stalled Hit. Disarming
// an unarmed site is a no-op.
func Disarm(site string) {
	mu.Lock()
	defer mu.Unlock()
	if f, ok := sites[site]; ok {
		close(f.cancel)
		delete(sites, site)
		armed.Add(-1)
	}
}

// Reset disarms every site.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	for site, f := range sites {
		close(f.cancel)
		delete(sites, site)
		armed.Add(-1)
	}
}

func lookup(site string) *Fault {
	if armed.Load() == 0 {
		return nil
	}
	mu.RLock()
	f := sites[site]
	mu.RUnlock()
	return f
}

// fires consumes one hit and reports whether it triggers, keyed by
// (Seed, site, hit index).
func (f *Fault) fires(site string) bool {
	i := f.hits.Add(1) - 1
	if f.Prob > 0 && f.Prob < 1 {
		h := splitmix64(f.Seed ^ hashString(site) ^ (i * 0x9e3779b97f4a7c15))
		if float64(h>>11)/(1<<53) >= f.Prob {
			return false
		}
	}
	if f.MaxFires > 0 {
		// CAS so Fired never overshoots the cap under concurrent hits.
		for {
			cur := f.fired.Load()
			if cur >= f.MaxFires {
				return false
			}
			if f.fired.CompareAndSwap(cur, cur+1) {
				break
			}
		}
	} else {
		f.fired.Add(1)
	}
	if telemetry.Enabled() {
		mFired.Inc()
	}
	return true
}

// Hit triggers any control fault armed at site. Panic faults panic with the
// fault's Value; Stall faults block until the delay elapses, the fault is
// disarmed, or either release channel closes. done is conventionally the
// run context's cancellation and quit the run's internal first-error abort;
// both release the stall promptly so a cancelled or failing run never
// lingers behind an injected delay. Either channel may be nil. NaN faults
// are data faults and ignore Hit. With nothing armed, Hit is one atomic
// load.
func Hit(site string, done, quit <-chan struct{}) {
	f := lookup(site)
	if f == nil || f.Kind == NaN || f.Kind == Err || !f.fires(site) {
		return
	}
	switch f.Kind {
	case Kill:
		// Die hard: SIGKILL bypasses deferred cleanup and signal handlers,
		// then block until the signal lands so no further instruction of
		// the commit protocol runs.
		if p, err := os.FindProcess(os.Getpid()); err == nil {
			_ = p.Kill()
		}
		select {}
	case Panic:
		v := f.Value
		if v == nil {
			v = "faultinject: injected panic at " + site
		}
		panic(v)
	case Stall:
		d := f.Delay
		if d <= 0 {
			d = 10 * time.Millisecond
		}
		t := time.NewTimer(d)
		defer t.Stop()
		select {
		case <-t.C:
		case <-f.cancel:
		case <-done:
		case <-quit:
		}
	}
}

// CheckErr returns the injected error of any Err fault armed at site that
// fires on this hit, and nil otherwise. Value supplies the error (an error
// value, or anything else formatted via %v); nil yields a descriptive
// error naming the site. Control and data faults ignore error sites. With
// nothing armed, CheckErr is one atomic load.
func CheckErr(site string) error {
	f := lookup(site)
	if f == nil || f.Kind != Err || !f.fires(site) {
		return nil
	}
	switch v := f.Value.(type) {
	case nil:
		return errors.New("faultinject: injected error at " + site)
	case error:
		return v
	default:
		return fmt.Errorf("faultinject: injected error at %s: %v", site, v)
	}
}

// CorruptFloats poisons buf according to any NaN fault armed at site,
// returning whether it fired. Control faults ignore data sites. With nothing
// armed, CorruptFloats is one atomic load.
func CorruptFloats(site string, buf []float32) bool {
	f := lookup(site)
	if f == nil || f.Kind != NaN || len(buf) == 0 || !f.fires(site) {
		return false
	}
	buf[0] = float32(math.NaN())
	return true
}

// splitmix64 is the finalizer of the SplitMix64 generator — a cheap,
// high-quality 64-bit mix used to turn (seed, site, hit) into a uniform
// firing decision.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// hashString is FNV-1a, inlined to keep the package dependency-free.
func hashString(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
