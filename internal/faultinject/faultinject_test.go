package faultinject

import (
	"errors"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestDisabledFastPathIsNoop(t *testing.T) {
	Reset()
	if Enabled() {
		t.Fatal("no faults armed, Enabled should be false")
	}
	Hit("some/site", nil, nil) // must not panic or block
	buf := []float32{1}
	if CorruptFloats("some/site", buf) || buf[0] != 1 {
		t.Fatal("disabled CorruptFloats must not touch the buffer")
	}
}

func TestArmDisarmLifecycle(t *testing.T) {
	Reset()
	disarm := Arm("t/site", &Fault{Kind: NaN})
	if !Enabled() {
		t.Fatal("Enabled should be true after Arm")
	}
	disarm()
	if Enabled() {
		t.Fatal("Enabled should be false after disarm")
	}
	Disarm("t/site") // disarming again is a no-op
}

func TestDuplicateArmPanics(t *testing.T) {
	Reset()
	defer Reset()
	Arm("t/dup", &Fault{})
	defer func() {
		if recover() == nil {
			t.Fatal("second Arm at the same site should panic")
		}
	}()
	Arm("t/dup", &Fault{})
}

func TestPanicFaultFires(t *testing.T) {
	Reset()
	defer Reset()
	Arm("t/panic", &Fault{Kind: Panic, Value: "boom"})
	defer func() {
		if r := recover(); r != "boom" {
			t.Fatalf("recovered %v, want \"boom\"", r)
		}
	}()
	Hit("t/panic", nil, nil)
	t.Fatal("Hit should have panicked")
}

func TestPanicFaultDefaultValueNamesSite(t *testing.T) {
	Reset()
	defer Reset()
	Arm("t/default", &Fault{Kind: Panic})
	defer func() {
		s, ok := recover().(string)
		if !ok || s == "" {
			t.Fatalf("recovered %v, want descriptive string", s)
		}
	}()
	Hit("t/default", nil, nil)
}

func TestNaNFaultCorruptsBuffer(t *testing.T) {
	Reset()
	defer Reset()
	f := &Fault{Kind: NaN}
	Arm("t/nan", f)
	buf := []float32{1, 2, 3}
	if !CorruptFloats("t/nan", buf) {
		t.Fatal("NaN fault should fire")
	}
	if !math.IsNaN(float64(buf[0])) {
		t.Fatalf("buf[0] = %v, want NaN", buf[0])
	}
	if buf[1] != 2 || buf[2] != 3 {
		t.Fatal("only the first element should be poisoned")
	}
	if f.Fired() != 1 || f.Hits() != 1 {
		t.Fatalf("counters: fired %d hits %d", f.Fired(), f.Hits())
	}
	// Hit ignores data faults.
	Hit("t/nan", nil, nil)
	if f.Hits() != 1 {
		t.Fatal("Hit must not consume hits of a NaN fault")
	}
}

func TestStallFaultReleasedByDone(t *testing.T) {
	Reset()
	defer Reset()
	Arm("t/stall", &Fault{Kind: Stall, Delay: time.Minute})
	done := make(chan struct{})
	released := make(chan struct{})
	go func() {
		Hit("t/stall", done, nil)
		close(released)
	}()
	select {
	case <-released:
		t.Fatal("stall released before done closed")
	case <-time.After(20 * time.Millisecond):
	}
	close(done)
	select {
	case <-released:
	case <-time.After(time.Second):
		t.Fatal("stall not released by done")
	}
}

// TestStallFaultReleasedByQuit pins satellite behavior the watchdog and
// first-error abort depend on: a run's internal quit channel must release a
// stalled worker just as promptly as context cancellation, or an injected
// stall on one worker would hold the whole run open after another worker
// already failed.
func TestStallFaultReleasedByQuit(t *testing.T) {
	Reset()
	defer Reset()
	Arm("t/stall-quit", &Fault{Kind: Stall, Delay: time.Minute})
	quit := make(chan struct{})
	released := make(chan struct{})
	go func() {
		Hit("t/stall-quit", nil, quit)
		close(released)
	}()
	select {
	case <-released:
		t.Fatal("stall released before quit closed")
	case <-time.After(20 * time.Millisecond):
	}
	start := time.Now()
	close(quit)
	select {
	case <-released:
		if d := time.Since(start); d > time.Second {
			t.Fatalf("stall took %v to release after quit", d)
		}
	case <-time.After(time.Second):
		t.Fatal("stall not released by quit")
	}
}

// TestMaxFiresIsExact pins the CAS-guarded cap: over concurrent hits a
// MaxFires fault triggers exactly that many times, never more — the
// guarantee retry tests ("first attempt fails, second succeeds") rely on.
func TestMaxFiresIsExact(t *testing.T) {
	Reset()
	defer Reset()
	f := &Fault{Kind: NaN, MaxFires: 3}
	disarm := Arm("t/maxfires", f)
	defer disarm()
	const workers, per = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]float32, 1)
			for i := 0; i < per; i++ {
				CorruptFloats("t/maxfires", buf)
			}
		}()
	}
	wg.Wait()
	if f.Fired() != 3 {
		t.Fatalf("fired = %d, want exactly MaxFires=3", f.Fired())
	}
	if f.Hits() != workers*per {
		t.Fatalf("hits = %d, want %d", f.Hits(), workers*per)
	}
	// Spent fault: further hits never fire.
	buf := []float32{1}
	if CorruptFloats("t/maxfires", buf) {
		t.Fatal("spent MaxFires fault fired again")
	}
}

func TestStallFaultReleasedByDisarm(t *testing.T) {
	Reset()
	defer Reset()
	disarm := Arm("t/stall2", &Fault{Kind: Stall, Delay: time.Minute})
	released := make(chan struct{})
	go func() {
		Hit("t/stall2", nil, nil)
		close(released)
	}()
	time.Sleep(10 * time.Millisecond)
	disarm()
	select {
	case <-released:
	case <-time.After(time.Second):
		t.Fatal("stall not released by disarm")
	}
}

func TestProbabilisticFiringIsDeterministic(t *testing.T) {
	Reset()
	defer Reset()
	const n = 4000
	run := func() (fired uint64) {
		f := &Fault{Kind: NaN, Prob: 0.25, Seed: 7}
		disarm := Arm("t/prob", f)
		defer disarm()
		buf := make([]float32, 1)
		for i := 0; i < n; i++ {
			buf[0] = 0
			CorruptFloats("t/prob", buf)
		}
		return f.Fired()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed fired %d then %d times", a, b)
	}
	// The rate should be near Prob (binomial, ±5 sigma).
	if a < n/4-250 || a > n/4+250 {
		t.Fatalf("fired %d of %d hits, want ~%d", a, n, n/4)
	}
	// A different seed selects a different subset (count may differ).
	f2 := &Fault{Kind: NaN, Prob: 0.25, Seed: 8}
	disarm := Arm("t/prob", f2)
	defer disarm()
	buf := make([]float32, 1)
	for i := 0; i < n; i++ {
		buf[0] = 0
		CorruptFloats("t/prob", buf)
	}
	if f2.Hits() != n {
		t.Fatalf("hits = %d, want %d", f2.Hits(), n)
	}
}

func TestConcurrentHitsAreCounted(t *testing.T) {
	Reset()
	defer Reset()
	f := &Fault{Kind: NaN, Prob: 0.5, Seed: 3}
	disarm := Arm("t/conc", f)
	defer disarm()
	const workers, per = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]float32, 1)
			for i := 0; i < per; i++ {
				CorruptFloats("t/conc", buf)
			}
		}()
	}
	wg.Wait()
	if f.Hits() != workers*per {
		t.Fatalf("hits = %d, want %d", f.Hits(), workers*per)
	}
	// Deterministic firing count regardless of interleaving.
	want := firedCount(f.Seed, "t/conc", workers*per, f.Prob)
	if f.Fired() != want {
		t.Fatalf("fired = %d, want %d", f.Fired(), want)
	}
}

// firedCount recomputes the deterministic firing count for n hits.
func firedCount(seed uint64, site string, n int, prob float64) uint64 {
	var c uint64
	for i := uint64(0); i < uint64(n); i++ {
		h := splitmix64(seed ^ hashString(site) ^ (i * 0x9e3779b97f4a7c15))
		if float64(h>>11)/(1<<53) < prob {
			c++
		}
	}
	return c
}

func TestKindString(t *testing.T) {
	if Panic.String() != "panic" || NaN.String() != "nan" || Stall.String() != "stall" || Kind(99).String() != "unknown" {
		t.Fatal("Kind strings wrong")
	}
}

func TestErrFaultFires(t *testing.T) {
	Reset()
	defer Reset()
	want := errors.New("disk on fire")
	f := &Fault{Kind: Err, Value: want}
	Arm("t/err", f)
	if err := CheckErr("t/err"); err != want {
		t.Fatalf("CheckErr returned %v, want the armed error", err)
	}
	if f.Fired() != 1 {
		t.Fatalf("Fired = %d, want 1", f.Fired())
	}
}

func TestErrFaultDefaultAndNonErrorValues(t *testing.T) {
	Reset()
	defer Reset()
	Arm("t/err-default", &Fault{Kind: Err})
	if err := CheckErr("t/err-default"); err == nil || !strings.Contains(err.Error(), "t/err-default") {
		t.Fatalf("default Err value should name the site, got %v", err)
	}
	Disarm("t/err-default")
	Arm("t/err-string", &Fault{Kind: Err, Value: "ENOSPC"})
	if err := CheckErr("t/err-string"); err == nil || !strings.Contains(err.Error(), "ENOSPC") {
		t.Fatalf("string Err value should appear in the error, got %v", err)
	}
}

func TestErrFaultIgnoredByOtherHooks(t *testing.T) {
	Reset()
	defer Reset()
	Arm("t/err-only", &Fault{Kind: Err})
	Hit("t/err-only", nil, nil) // must not panic or stall
	buf := []float32{1}
	if CorruptFloats("t/err-only", buf) || buf[0] != 1 {
		t.Fatal("Err fault must not poison floats")
	}
	Disarm("t/err-only")
	Arm("t/panic-only", &Fault{Kind: Panic})
	if err := CheckErr("t/panic-only"); err != nil {
		t.Fatalf("CheckErr on a Panic fault returned %v, want nil", err)
	}
}

func TestErrFaultMaxFires(t *testing.T) {
	Reset()
	defer Reset()
	Arm("t/err-once", &Fault{Kind: Err, MaxFires: 1})
	if CheckErr("t/err-once") == nil {
		t.Fatal("first CheckErr should fire")
	}
	for i := 0; i < 5; i++ {
		if err := CheckErr("t/err-once"); err != nil {
			t.Fatalf("CheckErr after MaxFires returned %v, want nil", err)
		}
	}
}
