// Package cusparse is the stand-in for NVIDIA cuSPARSE in the paper's GPU
// comparisons (see DESIGN.md): a strong csrmm-class SpMM on the simulated
// device using the row-split scheme of Yang, Buluç and Owens — one block
// per row group, features across threads, no atomics — but with a fixed
// schedule: no hybrid partitioning and no generalized kernels.
package cusparse

import (
	"fmt"

	"featgraph/internal/cudasim"
	"featgraph/internal/sparse"
	"featgraph/internal/tensor"
)

// CSRMM computes out = A × X on the simulated device and returns the
// simulated cycle count. A's stored values are used.
func CSRMM(dev *cudasim.Device, a *sparse.CSR, x, out *tensor.Tensor) (uint64, error) {
	if x.Rank() != 2 || out.Rank() != 2 {
		return 0, fmt.Errorf("cusparse: CSRMM requires rank-2 tensors")
	}
	d := x.Dim(1)
	if x.Dim(0) != a.NumCols {
		return 0, fmt.Errorf("cusparse: X has %d rows, A has %d columns", x.Dim(0), a.NumCols)
	}
	if out.Dim(0) != a.NumRows || out.Dim(1) != d {
		return 0, fmt.Errorf("cusparse: out shape %v, want [%d %d]", out.Shape(), a.NumRows, d)
	}
	xd := x.Data()
	od := out.Data()
	blocks := a.NumRows
	threads := min(nextPow2(d), 256)
	stats, err := dev.Launch(cudasim.LaunchConfig{Blocks: blocks, ThreadsPerBlock: threads}, func(b *cudasim.Block) {
		for r := b.Idx(); r < a.NumRows; r += blocks {
			orow := od[r*d : (r+1)*d]
			clear(orow)
			for p := a.RowPtr[r]; p < a.RowPtr[r+1]; p++ {
				c := int(a.ColIdx[p])
				v := a.Val[p]
				xrow := xd[c*d : (c+1)*d]
				if v == 1 {
					for f := range orow {
						orow[f] += xrow[f]
					}
				} else {
					for f := range orow {
						orow[f] += v * xrow[f]
					}
				}
				b.ChargeParallel(d, cudasim.CostGlobal+cudasim.CostFLOP)
			}
			b.ChargeParallel(d, cudasim.CostGlobal)
		}
	})
	if err != nil {
		return 0, err
	}
	return stats.SimCycles, nil
}

func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// ConstrainedGeMM computes att[e] = x[src(e)] · y[dst(e)] for every stored
// edge of a — an SDDMM. The paper's footnote 3 notes that recent cuSPARSE
// versions support dot-product attention through this primitive; it is
// implemented here as a strong baseline: edges grouped per block, the
// reduction across threads with warp-efficient access. Returns simulated
// cycles.
func ConstrainedGeMM(dev *cudasim.Device, a *sparse.CSR, x, y, att *tensor.Tensor) (uint64, error) {
	if x.Rank() != 2 || y.Rank() != 2 {
		return 0, fmt.Errorf("cusparse: ConstrainedGeMM requires rank-2 inputs")
	}
	d := x.Dim(1)
	if y.Dim(1) != d {
		return 0, fmt.Errorf("cusparse: operand widths differ: %d vs %d", d, y.Dim(1))
	}
	if x.Dim(0) != a.NumCols || y.Dim(0) != a.NumRows {
		return 0, fmt.Errorf("cusparse: operand heights %d,%d do not match graph %dx%d", x.Dim(0), y.Dim(0), a.NumRows, a.NumCols)
	}
	nnz := a.NNZ()
	if att.Dim(0) != nnz {
		return 0, fmt.Errorf("cusparse: att has %d rows, graph has %d edges", att.Dim(0), nnz)
	}
	rows := make([]int32, nnz)
	for r := 0; r < a.NumRows; r++ {
		for p := a.RowPtr[r]; p < a.RowPtr[r+1]; p++ {
			rows[p] = int32(r)
		}
	}
	xd, yd, ad := x.Data(), y.Data(), att.Data()
	blocks := min(nnz, 4096)
	threads := min(nextPow2(d), 256)
	stats, err := dev.Launch(cudasim.LaunchConfig{Blocks: blocks, ThreadsPerBlock: threads}, func(b *cudasim.Block) {
		for e := b.Idx(); e < nnz; e += blocks {
			u, v := int(a.ColIdx[e]), int(rows[e])
			xrow := xd[u*d : (u+1)*d]
			yrow := yd[v*d : (v+1)*d]
			var s float32
			for f := 0; f < d; f++ {
				s += xrow[f] * yrow[f]
			}
			ad[a.EID[e]] = s
			b.ChargeParallel(d, 2*cudasim.CostGlobal+cudasim.CostFLOP)
			b.ChargeTreeReduce(b.Dim())
			b.Charge(cudasim.CostGlobal)
		}
	})
	if err != nil {
		return 0, err
	}
	return stats.SimCycles, nil
}
