package cusparse

import (
	"math/rand"
	"testing"

	"featgraph/internal/core"
	"featgraph/internal/cudasim"
	"featgraph/internal/expr"
	"featgraph/internal/schedule"
	"featgraph/internal/sparse"
	"featgraph/internal/tensor"
)

func TestCSRMMMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const n, d = 40, 16
	a := sparse.Random(rng, n, n, 5)
	x := tensor.New(n, d)
	x.FillUniform(rng, -1, 1)
	want, err := core.ReferenceSpMM(a, expr.CopySrc(n, d), []*tensor.Tensor{x}, core.AggSum)
	if err != nil {
		t.Fatal(err)
	}
	dev := cudasim.NewDevice(cudasim.Config{NumSMs: 4})
	out := tensor.New(n, d)
	cycles, err := CSRMM(dev, a, x, out)
	if err != nil {
		t.Fatal(err)
	}
	if !out.AllClose(want, 1e-4) {
		t.Fatalf("max diff %v", out.MaxAbsDiff(want))
	}
	if cycles == 0 {
		t.Fatal("no cycles charged")
	}
}

func TestCSRMMWeighted(t *testing.T) {
	coo := &sparse.COO{NumRows: 2, NumCols: 2,
		Row: []int32{1}, Col: []int32{0}, Val: []float32{3}}
	a, err := sparse.FromCOO(coo)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.FromSlice([]float32{1, 2, 3, 4}, 2, 2)
	out := tensor.New(2, 2)
	dev := cudasim.NewDevice(cudasim.Config{})
	if _, err := CSRMM(dev, a, x, out); err != nil {
		t.Fatal(err)
	}
	if out.At(1, 0) != 3 || out.At(1, 1) != 6 {
		t.Fatalf("weighted row = %v", out.Row(1))
	}
}

func TestCSRMMRejectsBadShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := sparse.Random(rng, 4, 4, 2)
	dev := cudasim.NewDevice(cudasim.Config{})
	if _, err := CSRMM(dev, a, tensor.New(5, 3), tensor.New(4, 3)); err == nil {
		t.Error("X row mismatch should error")
	}
	if _, err := CSRMM(dev, a, tensor.New(4, 3), tensor.New(4, 4)); err == nil {
		t.Error("out shape mismatch should error")
	}
	if _, err := CSRMM(dev, a, tensor.New(12), tensor.New(4, 3)); err == nil {
		t.Error("rank-1 input should error")
	}
}

func TestCuSPARSEComparableToFeatGraphCycles(t *testing.T) {
	// Table IV(a): FeatGraph is on par with cuSPARSE on GCN aggregation
	// (within ~2× either way in our cost model).
	rng := rand.New(rand.NewSource(3))
	const n, d = 60, 32
	a := sparse.Random(rng, n, n, 8)
	x := tensor.New(n, d)
	x.FillUniform(rng, -1, 1)
	dev := cudasim.NewDevice(cudasim.Config{NumSMs: 4})

	out := tensor.New(n, d)
	cuCycles, err := CSRMM(dev, a, x, out)
	if err != nil {
		t.Fatal(err)
	}
	udf := expr.CopySrc(n, d)
	fds := schedule.New().Bind(udf.OutAxes[0], schedule.ThreadX)
	k, err := core.BuildSpMM(a, udf, []*tensor.Tensor{x}, core.AggSum, fds, core.Options{Target: core.GPU, Device: dev})
	if err != nil {
		t.Fatal(err)
	}
	fgOut := tensor.New(n, d)
	stats, err := k.Run(fgOut)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := cuCycles/3, cuCycles*3
	if stats.SimCycles < lo || stats.SimCycles > hi {
		t.Fatalf("FeatGraph cycles %d not comparable to cuSPARSE %d", stats.SimCycles, cuCycles)
	}
}

func TestConstrainedGeMMMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	const n, d = 30, 16
	a := sparse.Random(rng, n, n, 4)
	x := tensor.New(n, d)
	x.FillUniform(rng, -1, 1)
	want, err := core.ReferenceSDDMM(a, expr.DotAttention(n, d), []*tensor.Tensor{x})
	if err != nil {
		t.Fatal(err)
	}
	dev := cudasim.NewDevice(cudasim.Config{NumSMs: 4})
	att := tensor.New(a.NNZ(), 1)
	cycles, err := ConstrainedGeMM(dev, a, x, x, att)
	if err != nil {
		t.Fatal(err)
	}
	if !att.AllClose(want, 1e-3) {
		t.Fatalf("max diff %v", att.MaxAbsDiff(want))
	}
	if cycles == 0 {
		t.Fatal("no cycles charged")
	}
}

func TestConstrainedGeMMRejectsBadShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := sparse.Random(rng, 6, 6, 2)
	dev := cudasim.NewDevice(cudasim.Config{})
	x := tensor.New(6, 4)
	if _, err := ConstrainedGeMM(dev, a, x, tensor.New(6, 5), tensor.New(a.NNZ(), 1)); err == nil {
		t.Error("width mismatch should error")
	}
	if _, err := ConstrainedGeMM(dev, a, tensor.New(7, 4), x, tensor.New(a.NNZ(), 1)); err == nil {
		t.Error("height mismatch should error")
	}
	if _, err := ConstrainedGeMM(dev, a, x, x, tensor.New(3, 1)); err == nil {
		t.Error("att shape mismatch should error")
	}
}
