// Benchmarks for the persistent execution engine (PR 2): skewed-degree
// scheduling, steady-state allocation behavior, and plan-cache reuse in the
// dgl training loop. featbench -json runs the same measurements and emits
// machine-readable results (see BENCH_PR2.json).
package featgraph_test

import (
	"fmt"
	"math/rand"
	"testing"

	"featgraph"
	"featgraph/internal/core"
	"featgraph/internal/expr"
	"featgraph/internal/graphgen"
	"featgraph/internal/schedule"
	"featgraph/internal/sparse"
	"featgraph/internal/tensor"
)

// skewedRowGraph builds a rand-100K-style two-tier graph and transposes it
// so the degree skew lands on the rows — the axis SpMM splits across
// workers, where a uniform row split leaves one worker with most of the
// edges.
func skewedRowGraph(n int) *sparse.CSR {
	rng := rand.New(rand.NewSource(7))
	return graphgen.TwoTier(rng, n, 0.2, 60, 4).Transpose()
}

// BenchmarkEngineSkewedSpMM is the headline scheduling benchmark: GCN-style
// aggregation over a skewed-row-degree graph with NumThreads >= 4 and a
// partitioned, tiled schedule (many dispatch phases per run).
func BenchmarkEngineSkewedSpMM(b *testing.B) {
	const n, d = 16384, 32
	adj := skewedRowGraph(n)
	rng := rand.New(rand.NewSource(8))
	x := tensor.New(n, d)
	x.FillUniform(rng, -1, 1)
	out := tensor.New(n, d)
	for _, sched := range []struct {
		name   string
		legacy bool
	}{{"engine", false}, {"legacy", true}} {
		for _, threads := range []int{1, 4, 8} {
			b.Run(fmt.Sprintf("%s/threads-%d", sched.name, threads), func(b *testing.B) {
				udf := expr.CopySrc(n, d)
				fds := schedule.New().Split(udf.OutAxes[0], d/2)
				k, err := core.BuildSpMM(adj, udf, []*tensor.Tensor{x}, core.AggSum, fds,
					core.Options{Target: core.CPU, NumThreads: threads, GraphPartitions: 8, LegacySched: sched.legacy})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := k.Run(out); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkEngineSteadyStateAllocs measures per-run allocations of a built
// kernel — the steady state of a training loop, which the engine makes
// allocation-free.
func BenchmarkEngineSteadyStateAllocs(b *testing.B) {
	const n, d = 2048, 32
	rng := rand.New(rand.NewSource(9))
	adj := sparse.Random(rng, n, n, 8)
	x := tensor.New(n, d)
	x.FillUniform(rng, -1, 1)
	out := tensor.New(n, d)
	for _, sched := range []struct {
		name   string
		legacy bool
	}{{"engine", false}, {"legacy", true}} {
		opts := core.Options{Target: core.CPU, NumThreads: 4, LegacySched: sched.legacy}
		b.Run("spmm-cpu/"+sched.name, func(b *testing.B) {
			k, err := core.BuildSpMM(adj, expr.CopySrc(n, d), []*tensor.Tensor{x}, core.AggSum, nil, opts)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := k.Run(out); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("sddmm-cpu/"+sched.name, func(b *testing.B) {
			att := tensor.New(adj.NNZ(), 1)
			k, err := core.BuildSDDMM(adj, expr.DotAttention(n, d), []*tensor.Tensor{x}, nil, opts)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := k.Run(att); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEngineTelemetryOverhead measures the observability layer's cost
// on the steady-state run path: recording disabled (the budget is a few
// atomic loads per run, and — asserted by TestDisabledTelemetryRunIsAllocFree
// — zero allocations), enabled process-wide, and enabled per kernel via
// Options.Metrics.
func BenchmarkEngineTelemetryOverhead(b *testing.B) {
	const n, d = 2048, 32
	rng := rand.New(rand.NewSource(10))
	adj := sparse.Random(rng, n, n, 8)
	x := tensor.New(n, d)
	x.FillUniform(rng, -1, 1)
	out := tensor.New(n, d)
	for _, mode := range []struct {
		name   string
		global bool
		kernel bool
	}{{"disabled", false, false}, {"enabled", true, false}, {"kernel-opt-in", false, true}} {
		b.Run(mode.name, func(b *testing.B) {
			featgraph.SetMetricsEnabled(mode.global)
			defer featgraph.SetMetricsEnabled(false)
			k, err := core.BuildSpMM(adj, expr.CopySrc(n, d), []*tensor.Tensor{x}, core.AggSum, nil,
				core.Options{Target: core.CPU, NumThreads: 4, Metrics: mode.kernel})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := k.Run(out); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
