package featgraph_test

import (
	"strings"
	"testing"

	"featgraph"
)

// Both concrete kernel types must satisfy the unified Kernel interface.
var (
	_ featgraph.Kernel = (*featgraph.SpMMKernel)(nil)
	_ featgraph.Kernel = (*featgraph.SDDMMKernel)(nil)
)

// buildPair compiles one SpMM and one SDDMM kernel over a small graph.
func buildPair(t *testing.T) (*featgraph.Graph, []featgraph.Kernel) {
	t.Helper()
	const n, d = 8, 4
	g, err := featgraph.NewGraph(n, []int32{0, 1, 2, 3, 4, 5, 6, 7}, []int32{1, 2, 3, 4, 5, 6, 7, 0})
	if err != nil {
		t.Fatal(err)
	}
	x := featgraph.NewTensor(n, d)
	x.Fill(1)
	opts := featgraph.NewOptions(featgraph.WithTarget(featgraph.CPU), featgraph.WithNumThreads(2))
	spmm, err := featgraph.SpMM(g, featgraph.CopySrc(n, d), []*featgraph.Tensor{x}, featgraph.AggSum, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	sddmm, err := featgraph.SDDMM(g, featgraph.DotAttention(n, d), []*featgraph.Tensor{x}, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	return g, []featgraph.Kernel{spmm, sddmm}
}

func TestKernelInterfaceUniformUse(t *testing.T) {
	g, kernels := buildPair(t)
	for _, k := range kernels {
		desc := k.Describe()
		if desc == "" {
			t.Fatal("empty kernel description")
		}
		rows, cols := k.OutShape()
		out := featgraph.NewTensor(rows, cols)
		stats, err := k.Run(out)
		if err != nil {
			t.Fatalf("%s: %v", desc, err)
		}
		if stats.Duration <= 0 {
			t.Errorf("%s: Duration not populated: %v", desc, stats.Duration)
		}
		if stats.EdgesProcessed != uint64(g.NumEdges()) {
			t.Errorf("%s: EdgesProcessed = %d, want %d", desc, stats.EdgesProcessed, g.NumEdges())
		}
		if last := k.LastStats(); last != stats {
			t.Errorf("%s: LastStats %+v != returned stats %+v", desc, last, stats)
		}
	}
}

func TestNewOptionsComposition(t *testing.T) {
	opts := featgraph.NewOptions(
		featgraph.WithTarget(featgraph.GPU),
		featgraph.WithNumThreads(3),
		featgraph.WithGraphPartitions(4),
		featgraph.WithHilbert(),
		featgraph.WithLaunchDims(32, 64),
		featgraph.WithHybridThreshold(5),
		featgraph.WithCheckNumerics(),
		featgraph.WithMetrics(),
		featgraph.WithNoFallback(),
	)
	want := featgraph.Options{
		Target: featgraph.GPU, NumThreads: 3, GraphPartitions: 4, Hilbert: true,
		NumBlocks: 32, ThreadsPerBlock: 64, HybridThreshold: 5,
		CheckNumerics: true, Metrics: true, NoFallback: true,
	}
	if opts != want {
		t.Fatalf("NewOptions = %+v, want %+v", opts, want)
	}
	if zero := featgraph.NewOptions(); zero != (featgraph.Options{}) {
		t.Fatalf("NewOptions() = %+v, want zero Options", zero)
	}
}

func TestMetricsSnapshotAndWriter(t *testing.T) {
	featgraph.SetMetricsEnabled(true)
	defer featgraph.SetMetricsEnabled(false)
	_, kernels := buildPair(t)
	for _, k := range kernels {
		rows, cols := k.OutShape()
		if _, err := k.Run(featgraph.NewTensor(rows, cols)); err != nil {
			t.Fatal(err)
		}
	}
	var runs float64
	for _, m := range featgraph.Metrics() {
		if strings.HasPrefix(m.Name, "featgraph_kernel_runs_total") {
			runs += m.Value
		}
	}
	if runs < 2 {
		t.Fatalf("kernel run counters sum to %v after 2 runs, want >= 2", runs)
	}
	var sb strings.Builder
	if err := featgraph.WriteMetrics(&sb); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"featgraph_kernel_runs_total", "featgraph_kernel_run_seconds"} {
		if !strings.Contains(sb.String(), name) {
			t.Fatalf("Prometheus output missing %s:\n%s", name, sb.String())
		}
	}
}
