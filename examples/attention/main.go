// Attention: dot-product attention on every edge — the generalized SDDMM
// of §II-A — on the simulated GPU. Part 1 compares the tree-reduction
// schedule of Figure 4a against the naive one-thread-per-edge strategy
// (Figure 12's ablation); part 2 shows the expressiveness of the UDF
// language with the multi-head edge function of Figure 4b.
//
// Run with: go run ./examples/attention
package main

import (
	"fmt"
	"log"
	"math/rand"

	"featgraph"
)

func main() {
	const n, h, d = 2000, 4, 64
	rng := rand.New(rand.NewSource(7))

	var srcs, dsts []int32
	for v := 0; v < n; v++ {
		seen := map[int32]bool{}
		for len(seen) < 16 {
			u := int32(rng.Intn(n))
			if seen[u] {
				continue
			}
			seen[u] = true
			srcs = append(srcs, u)
			dsts = append(dsts, int32(v))
		}
	}
	g, err := featgraph.NewGraph(n, srcs, dsts)
	if err != nil {
		log.Fatal(err)
	}

	dev := featgraph.NewDevice(featgraph.DeviceConfig{})
	fmt.Printf("simulated device: %d SMs, %d KiB shared memory per block\n",
		dev.NumSMs(), dev.SharedMemPerBlock()/1024)

	// Part 1: single-head dot attention (Figure 4a), scheduled two ways.
	x := featgraph.NewTensor(n, d)
	x.FillUniform(rng, -1, 1)
	udf := featgraph.DotAttention(n, d)
	// The FDS needs the UDF's reduce axis: it is the last axis the
	// builder declared.
	redAxis := udf.Axes[len(udf.Axes)-1]

	run := func(name string, fds *featgraph.FDS) *featgraph.Tensor {
		kernel, err := featgraph.SDDMM(g, udf, []*featgraph.Tensor{x}, fds,
			featgraph.NewOptions(featgraph.WithTarget(featgraph.GPU), featgraph.WithDevice(dev)))
		if err != nil {
			log.Fatal(err)
		}
		att := featgraph.NewTensor(g.NumEdges(), 1)
		stats, err := kernel.Run(att)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s %8.2f Mcycles (simulated)\n", name, float64(stats.SimCycles)/1e6)
		return att
	}
	naive := run("one thread per edge:", nil)
	tree := run("tree reduction (thread.x):", featgraph.NewFDS().TreeReduce(redAxis, featgraph.ThreadX))
	if !naive.AllClose(tree, 1e-3) {
		log.Fatalf("schedules disagree: max diff %v", naive.MaxAbsDiff(tree))
	}

	// Spot-check one edge against a direct computation.
	e := 12345 % g.NumEdges()
	var want float32
	for f := 0; f < d; f++ {
		want += x.At(int(srcs[e]), f) * x.At(int(dsts[e]), f)
	}
	fmt.Printf("edge %d: kernel=%.4f direct=%.4f\n", e, tree.At(e, 0), want)

	// Part 2: the multi-head edge function of Figure 4b — one dot product
	// per attention head — runs through the same template unchanged.
	xh := featgraph.NewTensor(n, h, d)
	xh.FillUniform(rng, -1, 1)
	mh, err := featgraph.SDDMM(g, featgraph.MultiHeadDot(n, h, d), []*featgraph.Tensor{xh}, nil,
		featgraph.NewOptions(featgraph.WithTarget(featgraph.GPU), featgraph.WithDevice(dev)))
	if err != nil {
		log.Fatal(err)
	}
	attH := featgraph.NewTensor(g.NumEdges(), h)
	if _, err := mh.Run(attH); err != nil {
		log.Fatal(err)
	}
	var wantH float32
	for f := 0; f < d; f++ {
		wantH += xh.At(int(srcs[e]), 2, f) * xh.At(int(dsts[e]), 2, f)
	}
	fmt.Printf("edge %d head 2: kernel=%.4f direct=%.4f\n", e, attH.At(e, 2), wantH)
	fmt.Println("OK: attention kernels verified")
}
