// MLP aggregation: the motivating workload of the paper's Figure 1. Each
// edge computes ReLU((x_src + x_dst) × W) and the destination takes the
// elementwise maximum. The example expresses the message function as a
// custom UDF, then sweeps the feature dimension schedule to show how the
// FDS knob interacts with the template (Figures 8 and 14).
//
// Run with: go run ./examples/mlpagg
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"featgraph"
)

func main() {
	const n, d1, d2 = 3000, 8, 128
	rng := rand.New(rand.NewSource(3))

	var srcs, dsts []int32
	for v := 0; v < n; v++ {
		seen := map[int32]bool{}
		for len(seen) < 20 {
			u := int32(rng.Intn(n))
			if seen[u] {
				continue
			}
			seen[u] = true
			srcs = append(srcs, u)
			dsts = append(dsts, int32(v))
		}
	}
	g, err := featgraph.NewGraph(n, srcs, dsts)
	if err != nil {
		log.Fatal(err)
	}
	x := featgraph.NewTensor(n, d1)
	w := featgraph.NewTensor(d1, d2)
	x.FillUniform(rng, -1, 1)
	w.FillUniform(rng, -1, 1)

	// The message function, written out as an expression — identical in
	// structure to the paper's Figure 3b code.
	b := featgraph.NewBuilder()
	xp := b.Placeholder("X", n, d1)
	wp := b.Placeholder("W", d1, d2)
	i := b.OutAxis("i", d2)
	k := b.ReduceAxis("k", d1)
	msg := featgraph.Max(
		featgraph.Sum(k, featgraph.Mul(
			featgraph.Add(xp.At(featgraph.Src, k), xp.At(featgraph.Dst, k)),
			wp.At(k, i))),
		featgraph.C(0))
	udf := b.UDF(msg, i)

	fmt.Printf("UDF: %s\n", udf)

	// Sweep the FDS tiling factor for the output axis.
	var ref *featgraph.Tensor
	for _, tile := range []int{0, 8, 32, 64} {
		fds := featgraph.NewFDS()
		label := "untiled"
		if tile > 0 {
			fds.Split(i, tile)
			label = fmt.Sprintf("split(i, %d)", tile)
		}
		kernel, err := featgraph.SpMM(g, udf, []*featgraph.Tensor{x, w}, featgraph.AggMax, fds,
			featgraph.NewOptions(featgraph.WithTarget(featgraph.CPU), featgraph.WithGraphPartitions(8)))
		if err != nil {
			log.Fatal(err)
		}
		out := featgraph.NewTensor(n, d2)
		if _, err := kernel.Run(out); err != nil { // warm-up
			log.Fatal(err)
		}
		start := time.Now()
		const reps = 3
		for r := 0; r < reps; r++ {
			if _, err := kernel.Run(out); err != nil {
				log.Fatal(err)
			}
		}
		fmt.Printf("fds %-14s pattern=%-12s %8.2fms/run\n",
			label, kernel.Pattern(), time.Since(start).Seconds()*1e3/reps)
		if ref == nil {
			ref = out.Clone()
		} else if !out.AllClose(ref, 1e-3) {
			log.Fatalf("schedule changed the result! max diff %v", out.MaxAbsDiff(ref))
		}
	}
	fmt.Println("OK: every schedule computes the same MLP aggregation")
}
