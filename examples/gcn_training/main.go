// GCN training: the end-to-end integration of §IV-B and Table VI. A
// 2-layer GCN is trained on a planted-community vertex-classification task
// twice — once with the naive message-materializing backend (DGL without
// FeatGraph) and once with fused FeatGraph kernels — demonstrating that
// the backends agree on learning dynamics while differing in cost.
//
// This example uses the repository's internal mini-DGL framework directly,
// showing how FeatGraph slots in as a GNN framework backend.
//
// Run with: go run ./examples/gcn_training
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"featgraph/internal/core"
	"featgraph/internal/dgl"
	"featgraph/internal/graphgen"
	"featgraph/internal/nn"
)

func main() {
	rng := rand.New(rand.NewSource(11))
	ds := graphgen.PlantedCommunities(rng, 2000, 6, 14, 4, 32)
	fmt.Printf("dataset: %d vertices, %d edges, %d classes, %d features\n",
		ds.Adj.NumRows, ds.Adj.NNZ(), ds.NumClasses, ds.Features.Dim(1))

	const epochs = 40
	for _, backend := range []dgl.Backend{dgl.Naive, dgl.FeatGraph} {
		cfg := dgl.Config{Backend: backend, Target: core.CPU}
		if backend == dgl.FeatGraph {
			cfg.GraphPartitions = 8
			cfg.FeatureTileFactor = 16
		}
		g, err := dgl.New(ds.Adj, cfg)
		if err != nil {
			log.Fatal(err)
		}
		model, err := nn.NewGCN(g, ds.Features.Dim(1), 64, ds.NumClasses, rand.New(rand.NewSource(5)))
		if err != nil {
			log.Fatal(err)
		}
		opt := nn.NewAdam(0.01)

		start := time.Now()
		var lastLoss float64
		for e := 0; e < epochs; e++ {
			loss, err := nn.TrainEpoch(model, ds.Features, ds.Labels, ds.TrainMask, opt)
			if err != nil {
				log.Fatal(err)
			}
			lastLoss = loss
			if (e+1)%10 == 0 {
				val := nn.Evaluate(model, ds.Features, ds.Labels, ds.ValMask)
				fmt.Printf("  [%s] epoch %3d  loss %.4f  val acc %.3f\n", backend, e+1, loss, val)
			}
		}
		elapsed := time.Since(start)
		test := nn.Evaluate(model, ds.Features, ds.Labels, ds.TestMask)
		fmt.Printf("[%s] %d epochs in %s (%.1fms/epoch), final loss %.4f, TEST ACC %.3f, materialized msgs %.1fMB\n\n",
			backend, epochs, elapsed.Round(time.Millisecond),
			elapsed.Seconds()*1e3/epochs, lastLoss, test, float64(g.MsgBytes)/1e6)
	}
}
