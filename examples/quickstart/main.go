// Quickstart: express GCN aggregation (the vanilla SpMM of §II-A) with the
// FeatGraph public API, run it on CPU with a feature dimension schedule,
// and check the result against a hand-rolled reference.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	"featgraph"
)

func main() {
	const n, d = 1000, 64
	rng := rand.New(rand.NewSource(1))

	// A random directed graph: every vertex receives 8 edges.
	var srcs, dsts []int32
	for v := 0; v < n; v++ {
		seen := map[int32]bool{}
		for len(seen) < 8 {
			u := int32(rng.Intn(n))
			if seen[u] {
				continue
			}
			seen[u] = true
			srcs = append(srcs, u)
			dsts = append(dsts, int32(v))
		}
	}
	g, err := featgraph.NewGraph(n, srcs, dsts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: %d vertices, %d edges, avg degree %.1f\n",
		g.NumVertices(), g.NumEdges(), g.AvgDegree())

	// Vertex features.
	x := featgraph.NewTensor(n, d)
	x.FillUniform(rng, -1, 1)

	// The message function (copy source features) and its schedule: tile
	// the feature dimension by 16 for cache locality, exactly the FDS of
	// the paper's Figure 3a.
	udf := featgraph.CopySrc(n, d)
	fds := featgraph.NewFDS().Split(udf.OutAxes[0], 16)

	// Build the kernel — FeatGraph's per-topology compilation — and run it.
	kernel, err := featgraph.SpMM(g, udf, []*featgraph.Tensor{x}, featgraph.AggSum, fds,
		featgraph.NewOptions(featgraph.WithTarget(featgraph.CPU), featgraph.WithGraphPartitions(8)))
	if err != nil {
		log.Fatal(err)
	}
	out := featgraph.NewTensor(n, d)
	if _, err := kernel.Run(out); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("kernel pattern: %s\n", kernel.Pattern())

	// Verify against a direct per-edge reference.
	want := featgraph.NewTensor(n, d)
	for e := range srcs {
		wrow := want.Row(int(dsts[e]))
		xrow := x.Row(int(srcs[e]))
		for f := range wrow {
			wrow[f] += xrow[f]
		}
	}
	fmt.Printf("max |kernel - reference| = %.2g\n", out.MaxAbsDiff(want))
	if !out.AllClose(want, 1e-4) {
		log.Fatal("mismatch!")
	}
	fmt.Println("OK: fused SpMM kernel matches the reference")
}
