// Online serving: a GraphSage model served over sampled neighborhoods by
// the dynamic micro-batcher. Forty concurrent users fire single-seed
// inference requests; the batcher coalesces requests arriving inside a
// 2ms window into merged batches (one fused kernel launch per layer),
// per-tenant quotas shed the greediest tenant, and every answer is
// bitwise identical to running that request alone.
//
// Run with: go run ./examples/serving
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"featgraph"
)

func main() {
	const n, d, hidden, out = 5000, 32, 32, 8
	rng := rand.New(rand.NewSource(1))

	// A random graph: every vertex receives 12 edges.
	var srcs, dsts []int32
	for v := 0; v < n; v++ {
		seen := map[int32]bool{}
		for len(seen) < 12 {
			u := int32(rng.Intn(n))
			if !seen[u] {
				seen[u] = true
				srcs = append(srcs, u)
				dsts = append(dsts, int32(v))
			}
		}
	}
	g, err := featgraph.NewGraph(n, srcs, dsts)
	if err != nil {
		log.Fatal(err)
	}

	// Per-vertex features and a (randomly initialized) 2-layer model. Real
	// deployments load trained weights into the same ServeModel layers.
	feats := featgraph.NewTensor(n, d)
	feats.FillUniform(rng, -1, 1)
	model := featgraph.ServeModel{Layers: []featgraph.ServeLayer{
		glorot(rng, d, hidden), glorot(rng, hidden, out),
	}}

	// Quotas: "free" tenants get a small budget, "pro" a large one.
	quotas := featgraph.NewTenantQuotas(featgraph.QuotaConfig{RatePerSec: 200, Burst: 40})
	quotas.SetTenant("pro", featgraph.QuotaConfig{RatePerSec: 10000, Burst: 2000})

	b, err := featgraph.NewBatcher(g, feats, model, featgraph.NewServeConfig(
		featgraph.WithFanouts(10, 10),
		featgraph.WithSampleSeed(42),
		featgraph.WithBatchWindow(2*time.Millisecond),
		featgraph.WithMaxBatch(512),
		featgraph.WithServeThreads(4),
		featgraph.WithTenantQuotas(quotas),
	))
	if err != nil {
		log.Fatal(err)
	}
	defer b.Close()

	// Forty users, half free and half pro, each firing 25 requests.
	var served, shed atomic.Int64
	var coalesced atomic.Int64 // served requests that shared a batch
	var wg sync.WaitGroup
	for u := 0; u < 40; u++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tenant := "free"
			if u%2 == 0 {
				tenant = "pro"
			}
			rng := rand.New(rand.NewSource(int64(100 + u)))
			for i := 0; i < 25; i++ {
				ctx, cancel := context.WithTimeout(context.Background(), time.Second)
				res, err := b.Serve(ctx, featgraph.ServeRequest{
					Tenant: tenant,
					Seeds:  []int32{int32(rng.Intn(n))},
				})
				cancel()
				switch {
				case err == nil:
					served.Add(1)
					if res.Info.BatchRequests > 1 {
						coalesced.Add(1)
					}
				case errors.Is(err, featgraph.ErrOverloaded):
					shed.Add(1) // typed shed: back off and retry later
				default:
					log.Fatalf("request failed: %v", err)
				}
			}
		}()
	}
	wg.Wait()

	fmt.Printf("served %d requests (%d rode shared batches), shed %d by quota\n",
		served.Load(), coalesced.Load(), shed.Load())

	// One request inspected: the answer plus how its batch executed.
	res, err := b.Serve(context.Background(), featgraph.ServeRequest{
		Tenant: "pro", Seeds: []int32{7, 11},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("seeds [7 11] -> %dx%d embeddings; batch: %d req / %d seeds, %d kernel launches, %d block edges, plans built=%d reused=%d\n",
		res.Out.Dim(0), res.Out.Dim(1),
		res.Info.BatchRequests, res.Info.BatchSeeds, res.Info.KernelLaunches,
		res.Info.BlockEdges, res.Info.PlanBuilt, res.Info.PlanReused)
}

// glorot builds one GraphSage layer with Glorot-initialized weights.
func glorot(rng *rand.Rand, in, out int) featgraph.ServeLayer {
	l := featgraph.ServeLayer{
		Self:  featgraph.NewTensor(in, out),
		Neigh: featgraph.NewTensor(in, out),
	}
	l.Self.FillGlorot(rng)
	l.Neigh.FillGlorot(rng)
	return l
}
