package featgraph_test

import (
	"fmt"

	"featgraph"
)

// ExampleSpMM reproduces the paper's Figure 3a: GCN aggregation expressed
// as the copy-src message function with sum aggregation, scheduled with a
// feature-dimension split.
func ExampleSpMM() {
	// A 4-vertex path graph: 0→1→2→3.
	g, err := featgraph.NewGraph(4, []int32{0, 1, 2}, []int32{1, 2, 3})
	if err != nil {
		panic(err)
	}
	x := featgraph.TensorFromSlice([]float32{
		1, 10,
		2, 20,
		3, 30,
		4, 40,
	}, 4, 2)

	udf := featgraph.CopySrc(4, 2)
	fds := featgraph.NewFDS().Split(udf.OutAxes[0], 1)
	kernel, err := featgraph.SpMM(g, udf, []*featgraph.Tensor{x}, featgraph.AggSum, fds,
		featgraph.NewOptions(featgraph.WithTarget(featgraph.CPU)))
	if err != nil {
		panic(err)
	}
	out := featgraph.NewTensor(4, 2)
	if _, err := kernel.Run(out); err != nil {
		panic(err)
	}
	fmt.Println(out.Row(0), out.Row(1), out.Row(2), out.Row(3))
	// Output: [0 0] [1 10] [2 20] [3 30]
}

// ExampleSDDMM reproduces the paper's Figure 4a: dot-product attention on
// every edge.
func ExampleSDDMM() {
	g, err := featgraph.NewGraph(3, []int32{0, 1}, []int32{1, 2})
	if err != nil {
		panic(err)
	}
	x := featgraph.TensorFromSlice([]float32{
		1, 2,
		3, 4,
		5, 6,
	}, 3, 2)

	kernel, err := featgraph.SDDMM(g, featgraph.DotAttention(3, 2), []*featgraph.Tensor{x}, nil,
		featgraph.NewOptions(featgraph.WithTarget(featgraph.CPU)))
	if err != nil {
		panic(err)
	}
	att := featgraph.NewTensor(g.NumEdges(), 1)
	if _, err := kernel.Run(att); err != nil {
		panic(err)
	}
	// Edge 0: x0·x1 = 1*3+2*4 = 11; edge 1: x1·x2 = 3*5+4*6 = 39.
	fmt.Println(att.At(0, 0), att.At(1, 0))
	// Output: 11 39
}

// ExampleBuilder writes a custom UDF — a scaled, shifted dot product — in
// the tensor expression language.
func ExampleBuilder() {
	b := featgraph.NewBuilder()
	x := b.Placeholder("X", 2, 2)
	i := b.OutAxis("i", 1)
	k := b.ReduceAxis("k", 2)
	udf := b.UDF(
		featgraph.Add(
			featgraph.Mul(featgraph.Sum(k, featgraph.Mul(x.At(featgraph.Src, k), x.At(featgraph.Dst, k))), featgraph.C(0.5)),
			featgraph.C(1)),
		i)
	fmt.Println(udf)
	// Output: λ(i<1). ((sum_{k<2}((X[src,k] * X[dst,k])) * 0.5) + 1)
}
