// Benchmarks mapping one-to-one onto the paper's tables and figures (see
// DESIGN.md §4). These are micro-scale versions sized for `go test
// -bench=.`; the featbench command runs the full-table versions and prints
// paper-style rows.
//
// GPU benchmarks additionally report simulated cycles per op
// (Mcycles/op) — the metric the cost model defines — since host wall time
// of the simulator is not the object of study.
package featgraph_test

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"featgraph/internal/autodiff"
	"featgraph/internal/core"
	"featgraph/internal/cudasim"
	"featgraph/internal/cusparse"
	"featgraph/internal/dgl"
	"featgraph/internal/expr"
	"featgraph/internal/graphgen"
	"featgraph/internal/gunrock"
	"featgraph/internal/ligra"
	"featgraph/internal/mkl"
	"featgraph/internal/nn"
	"featgraph/internal/schedule"
	"featgraph/internal/sparse"
	"featgraph/internal/tensor"
)

const (
	benchN   = 1500
	benchDeg = 16
	benchD   = 64
	benchD1  = 8
)

var benchSetup struct {
	once sync.Once
	adj  *sparse.CSR
	x    *tensor.Tensor // [n, benchD]
	x8   *tensor.Tensor // [n, benchD1]
	w    *tensor.Tensor // [benchD1, benchD]
	lg   *ligra.Graph
	gg   *gunrock.Graph
	dev  *cudasim.Device
}

func setup(b *testing.B) {
	b.Helper()
	benchSetup.once.Do(func() {
		rng := rand.New(rand.NewSource(1))
		benchSetup.adj = graphgen.Skewed(rng, benchN, benchDeg, 1.4)
		benchSetup.x = tensor.New(benchN, benchD)
		benchSetup.x.FillUniform(rng, -1, 1)
		benchSetup.x8 = tensor.New(benchN, benchD1)
		benchSetup.x8.FillUniform(rng, -1, 1)
		benchSetup.w = tensor.New(benchD1, benchD)
		benchSetup.w.FillUniform(rng, -1, 1)
		benchSetup.lg = ligra.NewGraph(benchSetup.adj)
		benchSetup.gg = gunrock.NewGraph(benchSetup.adj)
		benchSetup.dev = cudasim.NewDevice(cudasim.Config{})
	})
}

func fgGCNKernel(b *testing.B, opts core.Options, tile int) *core.SpMMKernel {
	b.Helper()
	udf := expr.CopySrc(benchN, benchD)
	fds := schedule.New()
	if tile > 0 {
		fds.Split(udf.OutAxes[0], tile)
	}
	if opts.Target == core.GPU {
		fds.Bind(udf.OutAxes[0], schedule.ThreadX)
	}
	k, err := core.BuildSpMM(benchSetup.adj, udf, []*tensor.Tensor{benchSetup.x}, core.AggSum, fds, opts)
	if err != nil {
		b.Fatal(err)
	}
	return k
}

func reportCycles(b *testing.B, total uint64) {
	b.ReportMetric(float64(total)/float64(b.N)/1e6, "Mcycles/op")
}

// BenchmarkTable3a: single-threaded CPU GCN aggregation across systems.
func BenchmarkTable3aGCNAggregation(b *testing.B) {
	setup(b)
	out := tensor.New(benchN, benchD)
	b.Run("Ligra", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ligra.GCNAggregation(benchSetup.lg, benchSetup.x, out, 1)
		}
	})
	b.Run("MKL", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := mkl.CSRMM(benchSetup.adj, benchSetup.x, out, 1); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("FeatGraph", func(b *testing.B) {
		k := fgGCNKernel(b, core.Options{Target: core.CPU}, 0)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := k.Run(out); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkTable3b: single-threaded CPU MLP aggregation.
func BenchmarkTable3bMLPAggregation(b *testing.B) {
	setup(b)
	out := tensor.New(benchN, benchD)
	b.Run("Ligra", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ligra.MLPAggregation(benchSetup.lg, benchSetup.x8, benchSetup.w, out, 1)
		}
	})
	b.Run("FeatGraph", func(b *testing.B) {
		udf := expr.MLPMessage(benchN, benchD1, benchD)
		k, err := core.BuildSpMM(benchSetup.adj, udf, []*tensor.Tensor{benchSetup.x8, benchSetup.w},
			core.AggMax, nil, core.Options{Target: core.CPU})
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := k.Run(out); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkTable3c: single-threaded CPU dot-product attention.
func BenchmarkTable3cDotAttention(b *testing.B) {
	setup(b)
	att := tensor.New(benchSetup.adj.NNZ(), 1)
	b.Run("Ligra", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ligra.DotAttention(benchSetup.lg, benchSetup.x, att, 1)
		}
	})
	b.Run("FeatGraph", func(b *testing.B) {
		k, err := core.BuildSDDMM(benchSetup.adj, expr.DotAttention(benchN, benchD),
			[]*tensor.Tensor{benchSetup.x}, nil, core.Options{Target: core.CPU, Hilbert: true})
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := k.Run(att); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFig10: FeatGraph GCN aggregation across thread counts.
func BenchmarkFig10Scalability(b *testing.B) {
	setup(b)
	out := tensor.New(benchN, benchD)
	for _, threads := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("threads-%d", threads), func(b *testing.B) {
			k := fgGCNKernel(b, core.Options{Target: core.CPU, NumThreads: threads}, 0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := k.Run(out); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig11: the tiling × partitioning ablation.
func BenchmarkFig11Ablation(b *testing.B) {
	setup(b)
	out := tensor.New(benchN, benchD)
	variants := []struct {
		name     string
		gp, tile int
	}{
		{"baseline", 1, 0},
		{"tiling", 1, benchD / 4},
		{"partitioning", 16, 0},
		{"both", 16, benchD / 4},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			k := fgGCNKernel(b, core.Options{Target: core.CPU, GraphPartitions: v.gp}, v.tile)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := k.Run(out); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig14: points of the partitioning-factor grid.
func BenchmarkFig14PartitionGrid(b *testing.B) {
	setup(b)
	out := tensor.New(benchN, benchD)
	for _, gp := range []int{1, 16, 64} {
		for _, fp := range []int{1, 4} {
			tile := 0
			if fp > 1 {
				tile = benchD / fp
			}
			b.Run(fmt.Sprintf("gp-%d-fp-%d", gp, fp), func(b *testing.B) {
				k := fgGCNKernel(b, core.Options{Target: core.CPU, GraphPartitions: gp}, tile)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := k.Run(out); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkTable4a: GPU GCN aggregation across systems (cycles metric).
func BenchmarkTable4aGPUGCN(b *testing.B) {
	setup(b)
	out := tensor.New(benchN, benchD)
	b.Run("Gunrock", func(b *testing.B) {
		var total uint64
		for i := 0; i < b.N; i++ {
			c, err := gunrock.GCNAggregation(benchSetup.dev, benchSetup.gg, benchSetup.x, out)
			if err != nil {
				b.Fatal(err)
			}
			total += c
		}
		reportCycles(b, total)
	})
	b.Run("cuSPARSE", func(b *testing.B) {
		var total uint64
		for i := 0; i < b.N; i++ {
			c, err := cusparse.CSRMM(benchSetup.dev, benchSetup.adj, benchSetup.x, out)
			if err != nil {
				b.Fatal(err)
			}
			total += c
		}
		reportCycles(b, total)
	})
	b.Run("FeatGraph", func(b *testing.B) {
		k := fgGCNKernel(b, core.Options{Target: core.GPU, Device: benchSetup.dev}, 0)
		b.ResetTimer()
		var total uint64
		for i := 0; i < b.N; i++ {
			stats, err := k.Run(out)
			if err != nil {
				b.Fatal(err)
			}
			total += stats.SimCycles
		}
		reportCycles(b, total)
	})
}

// BenchmarkTable4b: GPU MLP aggregation.
func BenchmarkTable4bGPUMLP(b *testing.B) {
	setup(b)
	out := tensor.New(benchN, benchD)
	b.Run("Gunrock", func(b *testing.B) {
		var total uint64
		for i := 0; i < b.N; i++ {
			c, err := gunrock.MLPAggregation(benchSetup.dev, benchSetup.gg, benchSetup.x8, benchSetup.w, out)
			if err != nil {
				b.Fatal(err)
			}
			total += c
		}
		reportCycles(b, total)
	})
	b.Run("FeatGraph", func(b *testing.B) {
		udf := expr.MLPMessage(benchN, benchD1, benchD)
		fds := schedule.New().Bind(udf.OutAxes[0], schedule.ThreadX)
		k, err := core.BuildSpMM(benchSetup.adj, udf, []*tensor.Tensor{benchSetup.x8, benchSetup.w},
			core.AggMax, fds, core.Options{Target: core.GPU, Device: benchSetup.dev})
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		var total uint64
		for i := 0; i < b.N; i++ {
			stats, err := k.Run(out)
			if err != nil {
				b.Fatal(err)
			}
			total += stats.SimCycles
		}
		reportCycles(b, total)
	})
}

// BenchmarkTable4c / BenchmarkFig12: GPU dot attention with and without
// tree reduction, against Gunrock.
func BenchmarkTable4cGPUDot(b *testing.B) {
	setup(b)
	att := tensor.New(benchSetup.adj.NNZ(), 1)
	b.Run("Gunrock", func(b *testing.B) {
		var total uint64
		for i := 0; i < b.N; i++ {
			c, err := gunrock.DotAttention(benchSetup.dev, benchSetup.gg, benchSetup.x, att)
			if err != nil {
				b.Fatal(err)
			}
			total += c
		}
		reportCycles(b, total)
	})
	for _, tree := range []bool{false, true} {
		name := "FeatGraph-naive"
		if tree {
			name = "FeatGraph-tree-reduction"
		}
		b.Run(name, func(b *testing.B) {
			udf := expr.DotAttention(benchN, benchD)
			fds := schedule.New()
			if tree {
				if red, ok := udf.Body.(*expr.Reduce); ok {
					fds.TreeReduce(red.Axis, schedule.ThreadX)
				}
			}
			k, err := core.BuildSDDMM(benchSetup.adj, udf, []*tensor.Tensor{benchSetup.x}, fds,
				core.Options{Target: core.GPU, Device: benchSetup.dev})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			var total uint64
			for i := 0; i < b.N; i++ {
				stats, err := k.Run(att)
				if err != nil {
					b.Fatal(err)
				}
				total += stats.SimCycles
			}
			reportCycles(b, total)
		})
	}
}

// BenchmarkFig13: hybrid partitioning on a two-tier graph.
func BenchmarkFig13HybridPartitioning(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	adj := graphgen.TwoTier(rng, benchN, 0.2, 60, 4)
	x := tensor.New(benchN, benchD)
	x.FillUniform(rng, -1, 1)
	dev := cudasim.NewDevice(cudasim.Config{})
	out := tensor.New(benchN, benchD)
	threshold := int32(4 * adj.NNZ() / adj.NumCols)
	for _, hybrid := range []int32{0, threshold} {
		name := "off"
		if hybrid > 0 {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			udf := expr.CopySrc(benchN, benchD)
			fds := schedule.New().Bind(udf.OutAxes[0], schedule.ThreadX)
			k, err := core.BuildSpMM(adj, udf, []*tensor.Tensor{x}, core.AggSum, fds,
				core.Options{Target: core.GPU, Device: dev, HybridThreshold: hybrid})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			var total uint64
			for i := 0; i < b.N; i++ {
				stats, err := k.Run(out)
				if err != nil {
					b.Fatal(err)
				}
				total += stats.SimCycles
			}
			reportCycles(b, total)
		})
	}
}

// BenchmarkFig15: CUDA grid-size sensitivity.
func BenchmarkFig15Blocks(b *testing.B) {
	setup(b)
	out := tensor.New(benchN, benchD)
	for _, blocks := range []int{16, 128, benchN} {
		b.Run(fmt.Sprintf("blocks-%d", blocks), func(b *testing.B) {
			udf := expr.CopySrc(benchN, benchD)
			fds := schedule.New().Bind(udf.OutAxes[0], schedule.ThreadX)
			k, err := core.BuildSpMM(benchSetup.adj, udf, []*tensor.Tensor{benchSetup.x}, core.AggSum, fds,
				core.Options{Target: core.GPU, Device: benchSetup.dev, NumBlocks: blocks})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			var total uint64
			for i := 0; i < b.N; i++ {
				stats, err := k.Run(out)
				if err != nil {
					b.Fatal(err)
				}
				total += stats.SimCycles
			}
			reportCycles(b, total)
		})
	}
}

// BenchmarkTable5: sparsity sensitivity vs MKL.
func BenchmarkTable5Sparsity(b *testing.B) {
	const n, d = 1000, benchD
	for _, deg := range []int{1, 10, 100} {
		rng := rand.New(rand.NewSource(3))
		adj := graphgen.Uniform(rng, n, deg)
		x := tensor.New(n, d)
		x.FillUniform(rng, -1, 1)
		out := tensor.New(n, d)
		sparsity := 100 * (1 - float64(deg)/float64(n))
		b.Run(fmt.Sprintf("sparsity-%.1f%%/MKL", sparsity), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := mkl.CSRMM(adj, x, out, 1); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("sparsity-%.1f%%/FeatGraph", sparsity), func(b *testing.B) {
			k, err := core.BuildSpMM(adj, expr.CopySrc(n, d), []*tensor.Tensor{x}, core.AggSum, nil,
				core.Options{Target: core.CPU})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := k.Run(out); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTable6: one training epoch per model × backend.
func BenchmarkTable6Training(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	ds := graphgen.PlantedCommunities(rng, 800, 4, 10, 3, 32)
	for _, model := range []string{"gcn", "graphsage", "gat"} {
		for _, backend := range []dgl.Backend{dgl.Naive, dgl.FeatGraph} {
			b.Run(fmt.Sprintf("%s/%s", model, backend), func(b *testing.B) {
				g, err := dgl.New(ds.Adj, dgl.Config{Backend: backend, Target: core.CPU})
				if err != nil {
					b.Fatal(err)
				}
				var m nn.Model
				mrng := rand.New(rand.NewSource(5))
				switch model {
				case "gcn":
					m, err = nn.NewGCN(g, 32, 64, ds.NumClasses, mrng)
				case "graphsage":
					m, err = nn.NewGraphSage(g, 32, 32, ds.NumClasses, mrng)
				case "gat":
					m, err = nn.NewGAT(g, 32, 32, ds.NumClasses, mrng)
				}
				if err != nil {
					b.Fatal(err)
				}
				opt := nn.NewAdam(0.01)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := nn.TrainEpoch(m, ds.Features, ds.Labels, ds.TrainMask, opt); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkAblationFusion isolates DESIGN.md decision 1: fused kernels vs
// materialized messages for one aggregation.
func BenchmarkAblationFusion(b *testing.B) {
	setup(b)
	x := benchSetup.x
	for _, backend := range []dgl.Backend{dgl.Naive, dgl.FeatGraph} {
		b.Run(backend.String(), func(b *testing.B) {
			g, err := dgl.New(benchSetup.adj, dgl.Config{Backend: backend, Target: core.CPU})
			if err != nil {
				b.Fatal(err)
			}
			op, err := g.NewCopySum(benchD)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tp := newTape()
				op.Apply(tp, tp.Input(x))
			}
		})
	}
}

// BenchmarkAblationHilbert isolates DESIGN.md decision 5: Hilbert-curve vs
// row-major edge traversal for SDDMM.
func BenchmarkAblationHilbert(b *testing.B) {
	setup(b)
	att := tensor.New(benchSetup.adj.NNZ(), 1)
	for _, hilbert := range []bool{false, true} {
		name := "row-major"
		if hilbert {
			name = "hilbert"
		}
		b.Run(name, func(b *testing.B) {
			k, err := core.BuildSDDMM(benchSetup.adj, expr.DotAttention(benchN, benchD),
				[]*tensor.Tensor{benchSetup.x}, nil, core.Options{Target: core.CPU, Hilbert: hilbert})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := k.Run(att); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// newTape avoids importing autodiff twice across benchmark helpers.
func newTape() *autodiff.Tape { return autodiff.NewTape() }
